// Package epoch manages the versioned re-publication lifecycle of a
// served ε-PPI. The paper publishes M' once; a production locator must
// re-publish periodically — providers churn, and the Eq. 2 noise baked in
// at publication only guards the matrix actually being served — without
// ever stopping the fleet.
//
// An epoch store is a directory:
//
//	<root>/
//	  CURRENT            # text file: the active epoch number, e.g. "3\n"
//	  epochs/
//	    000001/          # one complete shard set per epoch
//	      manifest.eppi
//	      shard-000.idx …
//	    000002/
//	    000003/
//
// A Publisher writes each new shard set into a hidden temp directory,
// renames it to epochs/<n>/ (so a half-written set is never visible under
// its final name), then flips CURRENT via write-temp + fsync + rename —
// the POSIX-atomic pointer swap. Readers (Watcher, Load) go the other
// way: read CURRENT, verify the manifest and every member checksum, and
// reject anything inconsistent — a corrupted pointer or a torn epoch
// directory leaves the node serving its current epoch, never a broken
// one.
package epoch

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bitmat"
	"repro/internal/index"
	"repro/internal/privacy"
	"repro/internal/shard"
)

const (
	// CurrentName is the pointer file naming the active epoch.
	CurrentName = "CURRENT"
	// EpochsDir is the subdirectory holding one shard set per epoch.
	EpochsDir = "epochs"
)

var (
	// ErrNoCurrent reports a store with no CURRENT pointer — nothing has
	// been published yet.
	ErrNoCurrent = errors.New("epoch: no CURRENT pointer (nothing published)")
	// ErrBadCurrent reports a CURRENT pointer that does not parse as a
	// positive epoch number — a torn write or outside interference.
	ErrBadCurrent = errors.New("epoch: corrupted CURRENT pointer")
)

// Dir returns the shard-set directory of epoch n under root.
func Dir(root string, n uint64) string {
	return filepath.Join(root, EpochsDir, fmt.Sprintf("%06d", n))
}

// Current reads the active epoch number from the store's CURRENT pointer.
func Current(root string) (uint64, error) {
	raw, err := os.ReadFile(filepath.Join(root, CurrentName))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, fmt.Errorf("%w: %s", ErrNoCurrent, root)
		}
		return 0, fmt.Errorf("epoch: %w", err)
	}
	text := strings.TrimSpace(string(raw))
	n, perr := strconv.ParseUint(text, 10, 64)
	if perr != nil || n == 0 {
		return 0, fmt.Errorf("%w: %q", ErrBadCurrent, text)
	}
	return n, nil
}

// LoadAt loads shard k of an of-way set from epoch n of the store,
// verifying the manifest, its epoch stamp, and every member checksum
// first — a half-written or tampered epoch directory is rejected whole.
func LoadAt(root string, n uint64, k, of int) (*index.Server, error) {
	dir := Dir(root, n)
	man, err := shard.ReadManifest(dir)
	if err != nil {
		return nil, fmt.Errorf("epoch %d: %w", n, err)
	}
	if man.Epoch != n {
		return nil, fmt.Errorf("epoch %d: manifest claims epoch %d — misplaced shard set", n, man.Epoch)
	}
	if man.Shards != of {
		return nil, fmt.Errorf("epoch %d: manifest has %d shards, want %d", n, man.Shards, of)
	}
	if err := man.Verify(dir); err != nil {
		return nil, fmt.Errorf("epoch %d: %w", n, err)
	}
	srv, err := man.LoadShard(dir, k)
	if err != nil {
		return nil, fmt.Errorf("epoch %d: %w", n, err)
	}
	return srv, nil
}

// ErrNoReport reports an epoch published without a privacy report —
// a pre-report store or a report-less publisher, not corruption.
var ErrNoReport = errors.New("epoch: no privacy report")

// ErrNoDetail reports an epoch published without the operator-only
// privacy detail document (privacy_detail.json) — a pre-detail store
// or a publisher that deliberately withheld it, not corruption.
var ErrNoDetail = errors.New("epoch: no privacy detail")

// LoadReportAt loads and verifies epoch n's privacy report, rejecting
// a report whose own epoch stamp disagrees with the directory it sits
// in (a copied or misplaced file). Absence is ErrNoReport so callers
// can serve older epochs degraded rather than refusing them.
func LoadReportAt(root string, n uint64) (*privacy.Report, error) {
	rep, err := privacy.ReadFile(Dir(root, n))
	if err != nil {
		if os.IsNotExist(err) || errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("%w: epoch %d", ErrNoReport, n)
		}
		return nil, fmt.Errorf("epoch %d: %w", n, err)
	}
	if rep.Epoch != n {
		return nil, fmt.Errorf("epoch %d: privacy report claims epoch %d — misplaced report", n, rep.Epoch)
	}
	return rep, nil
}

// LoadDetailAt loads and verifies epoch n's operator-only privacy
// detail (identity ε-decile map, full violation records). Only offline
// tooling with filesystem access to the store — cmd/eppi-audit — should
// call this; serving paths work from the public report alone.
func LoadDetailAt(root string, n uint64) (*privacy.Detail, error) {
	det, err := privacy.ReadDetailFile(Dir(root, n))
	if err != nil {
		if os.IsNotExist(err) || errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("%w: epoch %d", ErrNoDetail, n)
		}
		return nil, fmt.Errorf("epoch %d: %w", n, err)
	}
	if det.Epoch != n {
		return nil, fmt.Errorf("epoch %d: privacy detail claims epoch %d — misplaced detail", n, det.Epoch)
	}
	return det, nil
}

// Load resolves CURRENT and loads shard k/of of the active epoch,
// returning the epoch number alongside the server.
func Load(root string, k, of int) (*index.Server, uint64, error) {
	n, err := Current(root)
	if err != nil {
		return nil, 0, err
	}
	srv, err := LoadAt(root, n, k, of)
	if err != nil {
		return nil, 0, err
	}
	return srv, n, nil
}

// SetCurrent atomically flips the store's CURRENT pointer to epoch n.
// It is the consumer half of the pointer protocol: a replication mirror
// that has downloaded, verified, and renamed an epoch directory into
// place calls it to make the epoch visible to the local Watcher. n must
// be a valid epoch number — 0 would write the very pointer value Current
// rejects as corrupted.
func SetCurrent(root string, n uint64) error {
	if n == 0 {
		return fmt.Errorf("%w: refusing to write epoch 0", ErrBadCurrent)
	}
	return writeCurrent(root, n)
}

// Prune deletes the oldest epoch directories from the store, keeping the
// newest keep epochs and — unconditionally — the epoch named by CURRENT,
// even if retention would otherwise drop it (a store whose pointer was
// rolled back must not have the serving epoch deleted out from under its
// nodes). keep <= 0 disables pruning. It returns the epoch numbers it
// removed. A store with no readable CURRENT pointer is never pruned:
// with the pointer torn there is no safe notion of "oldest".
func Prune(root string, keep int) ([]uint64, error) {
	if keep <= 0 {
		return nil, nil
	}
	cur, err := Current(root)
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(filepath.Join(root, EpochsDir))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("epoch: %w", err)
	}
	var epochs []uint64
	for _, e := range entries {
		// Dot-named entries are in-flight publish/mirror assembly dirs;
		// anything else non-numeric is not ours to delete.
		n, perr := strconv.ParseUint(e.Name(), 10, 64)
		if !e.IsDir() || perr != nil || n == 0 {
			continue
		}
		epochs = append(epochs, n)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	if len(epochs) <= keep {
		return nil, nil
	}
	var removed []uint64
	for _, n := range epochs[:len(epochs)-keep] {
		if n == cur {
			continue
		}
		if err := os.RemoveAll(Dir(root, n)); err != nil {
			return removed, fmt.Errorf("epoch: prune %d: %w", n, err)
		}
		removed = append(removed, n)
	}
	return removed, nil
}

// Publisher writes successive index publications into an epoch store.
// Each Publish allocates the next epoch number, writes a complete shard
// set for it, and atomically flips CURRENT to point at it.
type Publisher struct {
	// Root is the epoch store directory (created on first Publish).
	Root string
	// Keep, when positive, prunes the store down to the newest Keep
	// epochs after each successful publish (the freshly published epoch —
	// which CURRENT now names — is never pruned). 0 keeps every epoch.
	Keep int
}

// Publish writes the published index as the next epoch's shard set and
// flips CURRENT to it. The set is assembled under a temp name and renamed
// into place before the pointer moves, so a crash at any instant leaves
// either the old epoch fully active or the new one — never a torn store.
// It returns the epoch number it published.
func (p *Publisher) Publish(published *bitmat.Matrix, names []string, shards int) (uint64, error) {
	return p.PublishWithReport(published, names, shards, nil, nil)
}

// PublishWithReport is Publish carrying a privacy audit: the public
// report is sealed for the new epoch number and written as privacy.json
// inside the epoch directory, so it travels with the shard set it
// audits — same temp-dir assembly, same atomic visibility. The
// operator-only detail, when given, lands next to it as
// privacy_detail.json (mode 0600); serving nodes never read it. A nil
// report publishes without one (legacy stores and report-less callers);
// a nil detail publishes the report alone (e.g. when the store is
// handed to an untrusted host and per-identity data must not travel).
func (p *Publisher) PublishWithReport(published *bitmat.Matrix, names []string, shards int, rep *privacy.Report, det *privacy.Detail) (uint64, error) {
	if shards < 1 {
		return 0, fmt.Errorf("epoch: bad shard count %d", shards)
	}
	next := uint64(1)
	switch cur, err := Current(p.Root); {
	case err == nil:
		next = cur + 1
	case errors.Is(err, ErrNoCurrent):
		// Fresh store: publish epoch 1.
	default:
		// A corrupted pointer needs an operator, not a publisher silently
		// restarting the numbering over live serving nodes.
		return 0, err
	}
	if err := os.MkdirAll(filepath.Join(p.Root, EpochsDir), 0o755); err != nil {
		return 0, fmt.Errorf("epoch: %w", err)
	}
	// Assemble under a dot-name: Dir() can never resolve to it, so a
	// crashed half-written set is invisible to readers.
	tmp := filepath.Join(p.Root, EpochsDir, fmt.Sprintf(".publish-%06d", next))
	if err := os.RemoveAll(tmp); err != nil {
		return 0, fmt.Errorf("epoch: %w", err)
	}
	if _, err := shard.WriteSetAt(tmp, published, names, shards, next); err != nil {
		return 0, err
	}
	if rep != nil {
		if err := privacy.WriteFile(tmp, rep, next); err != nil {
			return 0, err
		}
	}
	if det != nil {
		if err := privacy.WriteDetailFile(tmp, det, next); err != nil {
			return 0, err
		}
	}
	final := Dir(p.Root, next)
	// A leftover from a publish that crashed after the rename but before
	// the CURRENT flip: the pointer never moved, so replacing it is safe.
	if err := os.RemoveAll(final); err != nil {
		return 0, fmt.Errorf("epoch: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return 0, fmt.Errorf("epoch: %w", err)
	}
	if err := writeCurrent(p.Root, next); err != nil {
		return 0, err
	}
	// Retention runs last: CURRENT already points at the new epoch, so a
	// prune error below reports a published epoch with stale dirs left
	// behind, never a lost publication.
	if _, err := Prune(p.Root, p.Keep); err != nil {
		return next, fmt.Errorf("epoch %d published, retention failed: %w", next, err)
	}
	return next, nil
}

// writeCurrent flips the CURRENT pointer: write a temp file, fsync it,
// rename over CURRENT, fsync the directory. Readers see either the old
// number or the new one, never a torn write.
func writeCurrent(root string, n uint64) error {
	tmp := filepath.Join(root, CurrentName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("epoch: %w", err)
	}
	if _, err := fmt.Fprintf(f, "%d\n", n); err != nil {
		f.Close()
		return fmt.Errorf("epoch: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("epoch: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("epoch: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(root, CurrentName)); err != nil {
		return fmt.Errorf("epoch: %w", err)
	}
	// Persist the rename itself. Some filesystems reject fsync on a
	// directory handle; the rename is still atomic, so that is advisory.
	if d, err := os.Open(root); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}
