package epoch

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/bitmat"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/mathx"
	"repro/internal/workload"
)

// buildIndex constructs a real published index for store tests.
func buildIndex(t *testing.T, providers, owners int, seed int64) (*bitmat.Matrix, []string) {
	t.Helper()
	d, err := workload.GenerateZipf(workload.ZipfConfig{
		Providers: providers, Owners: owners, Exponent: 1.1, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Construct(d.Matrix, d.Eps, core.Config{
		Policy: mathx.PolicyChernoff, Gamma: 0.9, Mode: core.ModeTrusted, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Published, d.Names
}

func TestPublishAndLoadRoundTrip(t *testing.T) {
	root := t.TempDir()
	published, names := buildIndex(t, 20, 30, 1)
	pub := Publisher{Root: root}

	if _, err := Current(root); !errors.Is(err, ErrNoCurrent) {
		t.Fatalf("fresh store Current err = %v, want ErrNoCurrent", err)
	}
	e, err := pub.Publish(published, names, 2)
	if err != nil {
		t.Fatal(err)
	}
	if e != 1 {
		t.Fatalf("first publish = epoch %d, want 1", e)
	}
	if n, err := Current(root); err != nil || n != 1 {
		t.Fatalf("Current = %d, %v", n, err)
	}

	totalOwners := 0
	for k := 0; k < 2; k++ {
		srv, n, err := Load(root, k, 2)
		if err != nil {
			t.Fatalf("Load shard %d: %v", k, err)
		}
		if n != 1 || srv.Epoch() != 1 {
			t.Fatalf("shard %d: Load epoch %d, server epoch %d, want 1", k, n, srv.Epoch())
		}
		totalOwners += srv.Owners()
	}
	if totalOwners != len(names) {
		t.Fatalf("shards hold %d owners, want %d", totalOwners, len(names))
	}

	// A second publication allocates the next number and moves CURRENT.
	published2, names2 := buildIndex(t, 25, 30, 2)
	if e, err = pub.Publish(published2, names2, 2); err != nil || e != 2 {
		t.Fatalf("second publish = %d, %v, want epoch 2", e, err)
	}
	srv, n, err := Load(root, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || srv.Epoch() != 2 || srv.Providers() != 25 {
		t.Fatalf("after republish: epoch %d/%d, providers %d", n, srv.Epoch(), srv.Providers())
	}
	// The previous epoch's shard set stays loadable (rollback material).
	if _, err := LoadAt(root, 1, 0, 2); err != nil {
		t.Fatalf("epoch 1 unreadable after publishing 2: %v", err)
	}
}

func TestPublishRejectsBadShardCount(t *testing.T) {
	published, names := buildIndex(t, 10, 10, 1)
	pub := Publisher{Root: t.TempDir()}
	if _, err := pub.Publish(published, names, 0); err == nil {
		t.Fatal("publish with 0 shards succeeded")
	}
}

func TestCorruptedCurrentRejected(t *testing.T) {
	root := t.TempDir()
	published, names := buildIndex(t, 10, 12, 1)
	pub := Publisher{Root: root}
	if _, err := pub.Publish(published, names, 1); err != nil {
		t.Fatal(err)
	}
	for _, garbage := range []string{"", "zero\n", "-4\n", "0\n", "1 2\n"} {
		if err := os.WriteFile(filepath.Join(root, CurrentName), []byte(garbage), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Current(root); !errors.Is(err, ErrBadCurrent) {
			t.Fatalf("Current with %q = %v, want ErrBadCurrent", garbage, err)
		}
		// The publisher must not silently restart numbering over a live
		// fleet when the pointer is torn.
		if _, err := pub.Publish(published, names, 1); !errors.Is(err, ErrBadCurrent) {
			t.Fatalf("Publish over corrupted CURRENT = %v, want ErrBadCurrent", err)
		}
	}
}

func TestLoadRejectsTornEpochDir(t *testing.T) {
	root := t.TempDir()
	published, names := buildIndex(t, 15, 20, 1)
	pub := Publisher{Root: root}
	if _, err := pub.Publish(published, names, 2); err != nil {
		t.Fatal(err)
	}

	// Truncate one member snapshot of a second, hand-rolled epoch: the
	// manifest checksum must reject the whole set.
	src, dst := Dir(root, 1), Dir(root, 2)
	copyDir(t, src, dst)
	shardPath := filepath.Join(dst, "shard-001.idx")
	raw, err := os.ReadFile(shardPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(shardPath, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := writeCurrent(root, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadAt(root, 2, 0, 2); err == nil {
		t.Fatal("torn epoch dir loaded")
	}
	// A copied set also carries the wrong embedded epoch — even with
	// intact files, a misplaced set must not serve as epoch 2.
	if err := os.WriteFile(shardPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadAt(root, 2, 0, 2); err == nil {
		t.Fatal("epoch-1 shard set served as epoch 2")
	}

	// A missing epoch dir (CURRENT flipped, set vanished) is rejected too.
	if err := writeCurrent(root, 3); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(root, 0, 2); err == nil {
		t.Fatal("missing epoch dir loaded")
	}
}

func TestLoadAtRejectsShardCountMismatch(t *testing.T) {
	root := t.TempDir()
	published, names := buildIndex(t, 10, 12, 1)
	pub := Publisher{Root: root}
	if _, err := pub.Publish(published, names, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadAt(root, 1, 0, 3); err == nil {
		t.Fatal("2-shard set loaded as a 3-shard set")
	}
}

func TestWatcherSwapsOnNewEpoch(t *testing.T) {
	root := t.TempDir()
	published, names := buildIndex(t, 12, 16, 1)
	pub := Publisher{Root: root}
	if _, err := pub.Publish(published, names, 1); err != nil {
		t.Fatal(err)
	}

	swapped := make(chan uint64, 4)
	w := &Watcher{
		Root: root, Shard: 0, Of: 1, Period: 5 * time.Millisecond,
		OnSwap: func(srv *index.Server, n uint64) error {
			if srv.Epoch() != n {
				t.Errorf("OnSwap server epoch %d, watcher says %d", srv.Epoch(), n)
			}
			swapped <- n
			return nil
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { w.Run(ctx, 1); close(done) }()

	published2, names2 := buildIndex(t, 12, 16, 9)
	if _, err := pub.Publish(published2, names2, 1); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-swapped:
		if n != 2 {
			t.Fatalf("swapped to epoch %d, want 2", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watcher never swapped to epoch 2")
	}
	cancel()
	<-done
}

func TestWatcherStaysOnRejectedEpoch(t *testing.T) {
	root := t.TempDir()
	published, names := buildIndex(t, 12, 16, 1)
	pub := Publisher{Root: root}
	if _, err := pub.Publish(published, names, 1); err != nil {
		t.Fatal(err)
	}
	w := &Watcher{
		Root: root, Shard: 0, Of: 1,
		OnSwap: func(*index.Server, uint64) error {
			t.Error("OnSwap called for a torn epoch")
			return nil
		},
	}
	// CURRENT points at an epoch that does not exist: poll must stay put.
	if err := writeCurrent(root, 7); err != nil {
		t.Fatal(err)
	}
	if got := w.poll(discardLogger(), 1); got != 1 {
		t.Fatalf("poll moved to %d over a missing epoch dir", got)
	}
	// Corrupted CURRENT: same.
	if err := os.WriteFile(filepath.Join(root, CurrentName), []byte("junk\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := w.poll(discardLogger(), 1); got != 1 {
		t.Fatalf("poll moved to %d over a corrupted pointer", got)
	}
}

func TestWatcherStaysWhenOnSwapFails(t *testing.T) {
	root := t.TempDir()
	published, names := buildIndex(t, 12, 16, 1)
	pub := Publisher{Root: root}
	if _, err := pub.Publish(published, names, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Publish(published, names, 1); err != nil {
		t.Fatal(err)
	}
	w := &Watcher{
		Root: root, Shard: 0, Of: 1,
		OnSwap: func(*index.Server, uint64) error { return errors.New("node says no") },
	}
	if got := w.poll(discardLogger(), 1); got != 1 {
		t.Fatalf("poll advanced to %d despite OnSwap failure", got)
	}
}

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPruneRetention(t *testing.T) {
	root := t.TempDir()
	published, names := buildIndex(t, 10, 12, 1)
	pub := Publisher{Root: root}
	for i := 0; i < 4; i++ {
		if _, err := pub.Publish(published, names, 1); err != nil {
			t.Fatal(err)
		}
	}
	// keep <= 0 disables pruning entirely.
	if removed, err := Prune(root, 0); err != nil || removed != nil {
		t.Fatalf("Prune(0) = %v, %v, want no-op", removed, err)
	}
	removed, err := Prune(root, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 2 || removed[0] != 1 || removed[1] != 2 {
		t.Fatalf("Prune(2) removed %v, want [1 2]", removed)
	}
	for _, n := range []uint64{3, 4} {
		if _, err := LoadAt(root, n, 0, 1); err != nil {
			t.Fatalf("kept epoch %d unreadable after prune: %v", n, err)
		}
	}
	if _, err := LoadAt(root, 1, 0, 1); err == nil {
		t.Fatal("pruned epoch 1 still loadable")
	}
}

func TestPruneNeverRemovesCurrent(t *testing.T) {
	root := t.TempDir()
	published, names := buildIndex(t, 10, 12, 1)
	pub := Publisher{Root: root}
	for i := 0; i < 3; i++ {
		if _, err := pub.Publish(published, names, 1); err != nil {
			t.Fatal(err)
		}
	}
	// An operator rolled the pointer back to epoch 1: retention must keep
	// the serving epoch alive even though it is the oldest.
	if err := SetCurrent(root, 1); err != nil {
		t.Fatal(err)
	}
	removed, err := Prune(root, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != 2 {
		t.Fatalf("Prune removed %v, want [2]", removed)
	}
	if _, err := LoadAt(root, 1, 0, 1); err != nil {
		t.Fatalf("CURRENT epoch pruned: %v", err)
	}
}

func TestPublisherKeepPrunesAfterPublish(t *testing.T) {
	root := t.TempDir()
	published, names := buildIndex(t, 10, 12, 1)
	pub := Publisher{Root: root, Keep: 2}
	for i := 0; i < 3; i++ {
		if _, err := pub.Publish(published, names, 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := LoadAt(root, 1, 0, 1); err == nil {
		t.Fatal("Keep=2 publisher left epoch 1 behind")
	}
	if _, err := LoadAt(root, 3, 0, 1); err != nil {
		t.Fatalf("freshly published epoch unreadable: %v", err)
	}
	if n, err := Current(root); err != nil || n != 3 {
		t.Fatalf("Current = %d, %v", n, err)
	}
}

func TestSetCurrentRejectsZero(t *testing.T) {
	if err := SetCurrent(t.TempDir(), 0); !errors.Is(err, ErrBadCurrent) {
		t.Fatalf("SetCurrent(0) = %v, want ErrBadCurrent", err)
	}
}

func TestWatcherStaysOnRegressedCurrent(t *testing.T) {
	root := t.TempDir()
	published, names := buildIndex(t, 12, 16, 1)
	pub := Publisher{Root: root}
	for i := 0; i < 2; i++ {
		if _, err := pub.Publish(published, names, 1); err != nil {
			t.Fatal(err)
		}
	}
	w := &Watcher{
		Root: root, Shard: 0, Of: 1,
		OnSwap: func(*index.Server, uint64) error {
			t.Error("OnSwap called for a regressed pointer")
			return nil
		},
	}
	// The pointer rolls back to epoch 1 under a node serving epoch 2: the
	// node must warn and stay, never swap the fleet backwards.
	if err := SetCurrent(root, 1); err != nil {
		t.Fatal(err)
	}
	var logBuf strings.Builder
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	if got := w.poll(logger, 2); got != 2 {
		t.Fatalf("poll swapped backwards to %d", got)
	}
	if !strings.Contains(logBuf.String(), "regressed") {
		t.Fatalf("regression not warned about:\n%s", logBuf.String())
	}
}

func TestJitterBounds(t *testing.T) {
	const d = time.Second
	lo, hi := d, d
	for i := 0; i < 2000; i++ {
		j := Jitter(d)
		if j < 9*d/10 || j > 11*d/10 {
			t.Fatalf("Jitter(%v) = %v outside ±10%%", d, j)
		}
		if j < lo {
			lo = j
		}
		if j > hi {
			hi = j
		}
	}
	// The spread must actually spread: a fleet that all lands on the same
	// tick has no herd protection at all.
	if lo == hi {
		t.Fatalf("Jitter produced a constant %v over 2000 samples", lo)
	}
	if Jitter(0) != 0 {
		t.Fatal("Jitter(0) != 0")
	}
}
