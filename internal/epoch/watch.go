package epoch

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"math/rand/v2"
	"time"

	"repro/internal/index"
	"repro/internal/trace"
)

// DefaultPollPeriod is the CURRENT-pointer poll interval when the Watcher
// does not set one.
const DefaultPollPeriod = 2 * time.Second

// Jitter returns d perturbed by up to ±10%. Pollers use it on every tick
// so a fleet restarted together de-synchronizes instead of hammering the
// same store (or replication origin) in lockstep forever.
func Jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	tenth := int64(d / 10)
	if tenth == 0 {
		return d
	}
	return d + time.Duration(rand.Int64N(2*tenth+1)-tenth)
}

// Watcher polls an epoch store's CURRENT pointer and hands every newly
// published epoch's shard to OnSwap. The load is all-or-nothing: the new
// manifest is read and every checksum verified before OnSwap sees
// anything, so a corrupted pointer or half-written epoch directory is
// logged and skipped — the node keeps serving what it serves, and the
// next tick retries.
type Watcher struct {
	// Root is the epoch store directory.
	Root string
	// Shard/Of select which member of each epoch's shard set to load.
	Shard, Of int
	// Period is the poll interval; 0 means DefaultPollPeriod.
	Period time.Duration
	// OnSwap receives each successfully loaded new epoch. An error return
	// keeps the watcher on the old epoch (the swap is retried next tick).
	OnSwap func(srv *index.Server, epoch uint64) error
	// Logger receives swap and rejection logs; nil discards.
	Logger *slog.Logger
	// Tracer records one "epoch.reload" root span per swap attempt; nil
	// disables tracing.
	Tracer *trace.Tracer
}

// Run polls until ctx is cancelled. current is the epoch the caller
// already serves (what Load returned at boot); only a different CURRENT
// triggers a reload.
func (w *Watcher) Run(ctx context.Context, current uint64) {
	period := w.Period
	if period <= 0 {
		period = DefaultPollPeriod
	}
	logger := w.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	// A timer re-armed with a fresh jitter each tick, not a fixed ticker:
	// nodes that booted together drift apart instead of polling the store
	// in a thundering herd every period.
	timer := time.NewTimer(Jitter(period))
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
			current = w.poll(logger, current)
			timer.Reset(Jitter(period))
		}
	}
}

// poll checks CURRENT once and returns the epoch the node serves after
// the check (unchanged unless a reload succeeded end to end).
func (w *Watcher) poll(logger *slog.Logger, current uint64) uint64 {
	n, err := Current(w.Root)
	if err != nil {
		// ErrNoCurrent is normal before the first publish; anything else
		// (corrupted pointer, IO error) is worth an operator's attention —
		// but never worth abandoning the served epoch.
		if current != 0 || !errors.Is(err, ErrNoCurrent) {
			logger.Warn("epoch pointer unreadable, staying on current epoch",
				slog.Uint64("epoch", current), slog.Any("error", err))
		}
		return current
	}
	if n == current {
		return current
	}
	if n < current {
		// A pointer that moved backwards is a rolled-back or restored
		// store, not a publication. Swapping to an older index would
		// re-serve retired answers fleet-wide; stay put and say so.
		logger.Warn("CURRENT regressed, staying on served epoch",
			slog.Uint64("epoch", current), slog.Uint64("pointer_epoch", n))
		return current
	}
	var sp *trace.Span
	if w.Tracer != nil {
		_, sp = w.Tracer.StartRoot(context.Background(), "epoch.reload")
		sp.SetUint("from_epoch", current)
		sp.SetUint("to_epoch", n)
		defer sp.End()
	}
	srv, err := LoadAt(w.Root, n, w.Shard, w.Of)
	if err != nil {
		sp.Set("outcome", "rejected")
		sp.Set("error", err.Error())
		logger.Warn("new epoch rejected, staying on current epoch",
			slog.Uint64("epoch", current), slog.Uint64("new_epoch", n), slog.Any("error", err))
		return current
	}
	if err := w.OnSwap(srv, n); err != nil {
		sp.Set("outcome", "swap_failed")
		sp.Set("error", err.Error())
		logger.Warn("epoch swap failed, staying on current epoch",
			slog.Uint64("epoch", current), slog.Uint64("new_epoch", n), slog.Any("error", err))
		return current
	}
	sp.Set("outcome", "swapped")
	logger.Info("epoch swapped",
		slog.Uint64("from_epoch", current), slog.Uint64("to_epoch", n),
		slog.Int("providers", srv.Providers()), slog.Int("owners", srv.Owners()))
	return n
}
