package transport

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

func mustSession(t *testing.T, mux *SessionMux, id uint32) Network {
	t.Helper()
	s, err := mux.Session(id)
	if err != nil {
		t.Fatalf("Session(%d): %v", id, err)
	}
	return s
}

// Two sessions over one physical network must never see each other's
// messages, and each must preserve per-sender FIFO order.
func TestSessionIsolationInMem(t *testing.T) {
	inner, err := NewInMem(2)
	if err != nil {
		t.Fatal(err)
	}
	mux := NewSessionMux(inner)
	defer mux.Close()
	a := mustSession(t, mux, 1)
	b := mustSession(t, mux, 2)

	const per = 50
	var wg sync.WaitGroup
	wg.Add(2)
	for _, tc := range []struct {
		net  Network
		kind Kind
	}{{a, KindShare}, {b, KindGMWAnd}} {
		go func(net Network, kind Kind) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := net.Node(0).Send(1, Message{Kind: kind, Seq: uint32(i), Data: []uint64{uint64(i)}}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(tc.net, tc.kind)
	}
	wg.Wait()

	check := func(net Network, kind Kind) {
		for i := 0; i < per; i++ {
			m, err := net.Node(1).Recv()
			if err != nil {
				t.Fatalf("recv %v #%d: %v", kind, i, err)
			}
			if m.Kind != kind {
				t.Fatalf("session leaked: got kind %v, want %v", m.Kind, kind)
			}
			if m.Seq != uint32(i) {
				t.Fatalf("kind %v: out of order: got seq %d, want %d", kind, m.Seq, i)
			}
		}
	}
	check(a, KindShare)
	check(b, KindGMWAnd)
}

// Per-session stats must count only that session's traffic, while the mux
// (physical) stats see everything.
func TestSessionStatsIsolated(t *testing.T) {
	inner, err := NewInMem(2)
	if err != nil {
		t.Fatal(err)
	}
	mux := NewSessionMux(inner)
	defer mux.Close()
	a := mustSession(t, mux, 7)
	b := mustSession(t, mux, 8)

	for i := 0; i < 3; i++ {
		if err := a.Node(0).Send(1, Message{Kind: KindShare, Data: []uint64{1, 2}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Node(1).Send(0, Message{Kind: KindControl}); err != nil {
		t.Fatal(err)
	}

	if st := a.Stats(); st.Messages != 3 {
		t.Fatalf("session a counted %d messages, want 3", st.Messages)
	}
	if st := b.Stats(); st.Messages != 1 {
		t.Fatalf("session b counted %d messages, want 1", st.Messages)
	}
	if st := mux.Stats(); st.Messages != 4 {
		t.Fatalf("mux counted %d messages, want 4", st.Messages)
	}
	wantBytes := uint64(3 * (28 + 16))
	if st := a.Stats(); st.Bytes != wantBytes {
		t.Fatalf("session a counted %d bytes, want %d", st.Bytes, wantBytes)
	}
}

// A message may arrive before the receiving side has opened its session;
// it must be parked and delivered once the session is opened.
func TestSessionParksEarlyMessages(t *testing.T) {
	inner, err := NewInMem(2)
	if err != nil {
		t.Fatal(err)
	}
	mux := NewSessionMux(inner)
	defer mux.Close()
	sender := mustSession(t, mux, 3)
	if err := sender.Node(0).Send(1, Message{Kind: KindShare, Data: []uint64{42}}); err != nil {
		t.Fatal(err)
	}
	// Give the pump a moment to route it into the parked mailbox before the
	// receiver looks; Recv would block either way, this just makes the test
	// exercise the parked path deliberately.
	time.Sleep(10 * time.Millisecond)
	m, err := sender.Node(1).Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Session != 3 || m.Data[0] != 42 {
		t.Fatalf("got session %d data %v", m.Session, m.Data)
	}
}

// Closing one session unblocks its receivers with ErrClosed and retires
// its id, without disturbing sibling sessions.
func TestSessionCloseIsLocalAndRetiresID(t *testing.T) {
	inner, err := NewInMem(2)
	if err != nil {
		t.Fatal(err)
	}
	mux := NewSessionMux(inner)
	defer mux.Close()
	a := mustSession(t, mux, 1)
	b := mustSession(t, mux, 2)

	recvErr := make(chan error, 1)
	go func() {
		_, err := a.Node(1).Recv()
		recvErr <- err
	}()
	time.Sleep(5 * time.Millisecond)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-recvErr:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("recv after close: %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv did not unblock after session close")
	}

	// Sibling session still works.
	if err := b.Node(0).Send(1, Message{Kind: KindControl}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Node(1).Recv(); err != nil {
		t.Fatal(err)
	}

	// The id is retired forever: reuse would risk cross-talk with late
	// in-flight messages.
	if _, err := mux.Session(1); err == nil {
		t.Fatal("Session(1) after close should fail")
	}

	// Late messages for the retired session are dropped, not delivered to
	// anyone and not a panic.
	if err := b.Node(0).Send(1, Message{Kind: KindShare, Session: 1}); err != nil {
		t.Fatal(err)
	}
}

// Closing the mux closes the physical network, every session, and all
// pump goroutines.
func TestSessionMuxCloseReleasesEverything(t *testing.T) {
	before := runtime.NumGoroutine()
	inner, err := NewInMem(3)
	if err != nil {
		t.Fatal(err)
	}
	mux := NewSessionMux(inner)
	s := mustSession(t, mux, 9)
	recvErr := make(chan error, 1)
	go func() {
		_, err := s.Node(2).Recv()
		recvErr <- err
	}()
	time.Sleep(5 * time.Millisecond)
	if err := mux.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-recvErr; !errors.Is(err, ErrClosed) {
		t.Fatalf("recv after mux close: %v, want ErrClosed", err)
	}
	if _, err := mux.Session(10); err == nil {
		t.Fatal("Session on closed mux should fail")
	}
	if err := mux.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after mux close", before, runtime.NumGoroutine())
}

// The session id must survive gob framing on the TCP transport so routing
// works across real sockets.
func TestSessionOverTCP(t *testing.T) {
	inner, err := NewTCP(2)
	if err != nil {
		t.Fatal(err)
	}
	mux := NewSessionMux(inner)
	defer mux.Close()
	a := mustSession(t, mux, 11)
	b := mustSession(t, mux, 12)
	if err := a.Node(0).Send(1, Message{Kind: KindShare, Data: []uint64{7}}); err != nil {
		t.Fatal(err)
	}
	if err := b.Node(0).Send(1, Message{Kind: KindShare, Data: []uint64{8}}); err != nil {
		t.Fatal(err)
	}
	ma, err := a.Node(1).Recv()
	if err != nil {
		t.Fatal(err)
	}
	mb, err := b.Node(1).Recv()
	if err != nil {
		t.Fatal(err)
	}
	if ma.Session != 11 || ma.Data[0] != 7 {
		t.Fatalf("session a got session=%d data=%v", ma.Session, ma.Data)
	}
	if mb.Session != 12 || mb.Data[0] != 8 {
		t.Fatalf("session b got session=%d data=%v", mb.Session, mb.Data)
	}
}

// Instrumenting via a session must count physical traffic exactly once, no
// matter how many sessions share the wire.
func TestSessionInstrumentCountsOnce(t *testing.T) {
	inner, err := NewInMem(2)
	if err != nil {
		t.Fatal(err)
	}
	mux := NewSessionMux(inner)
	defer mux.Close()
	a := mustSession(t, mux, 1)
	b := mustSession(t, mux, 2)
	reg := metrics.NewRegistry()
	if !Instrument(a, reg) {
		t.Fatal("session should support Instrument")
	}
	if RegistryOf(b) != reg {
		t.Fatal("registry should be shared through the physical network")
	}
	if err := a.Node(0).Send(1, Message{Kind: KindShare}); err != nil {
		t.Fatal(err)
	}
	if err := b.Node(0).Send(1, Message{Kind: KindShare}); err != nil {
		t.Fatal(err)
	}
	total := reg.Counter("eppi_transport_messages_total", "").Value()
	if total != 2 {
		t.Fatalf("registry counted %v messages, want 2", total)
	}
}
