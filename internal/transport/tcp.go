package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// TCPNetwork is a full-mesh TCP network over loopback: party i maintains a
// gob-framed connection to every other party. It stands in for the paper's
// Netty + protocol-buffers stack and lets the secure protocols run over real
// sockets (examples/distributed and the TCP variants of the Fig. 6
// experiments use it).
type TCPNetwork struct {
	nodes []*tcpNode
	stats counter
}

var _ Network = (*TCPNetwork)(nil)

// NewTCP creates an n-party network, with every pair connected over
// 127.0.0.1. It blocks until the full mesh is established.
func NewTCP(n int) (*TCPNetwork, error) {
	if n <= 0 {
		return nil, fmt.Errorf("transport: party count %d must be > 0", n)
	}
	network := &TCPNetwork{nodes: make([]*tcpNode, n)}
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeListeners(listeners[:i])
			return nil, fmt.Errorf("listen party %d: %w", i, err)
		}
		listeners[i] = l
		network.nodes[i] = &tcpNode{
			id:    i,
			net:   network,
			mb:    newMailbox(),
			conns: make([]*peerConn, n),
		}
	}

	// Party i dials party j for all i < j; party j accepts and learns the
	// dialer's id from a one-message handshake.
	var wg sync.WaitGroup
	errs := make([]error, n)
	for j := 0; j < n; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			for k := 0; k < j; k++ { // j accepts one conn per lower-id peer
				conn, err := listeners[j].Accept()
				if err != nil {
					errs[j] = fmt.Errorf("accept on party %d: %w", j, err)
					return
				}
				dec := gob.NewDecoder(conn)
				var hello Message
				if err := dec.Decode(&hello); err != nil {
					errs[j] = fmt.Errorf("handshake on party %d: %w", j, err)
					conn.Close()
					return
				}
				pc := &peerConn{conn: conn, enc: gob.NewEncoder(conn), dec: dec}
				network.nodes[j].setConn(hello.From, pc)
			}
		}(j)
	}
	dialErr := func() error {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				conn, err := net.Dial("tcp", listeners[j].Addr().String())
				if err != nil {
					return fmt.Errorf("dial %d->%d: %w", i, j, err)
				}
				pc := &peerConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
				if err := pc.enc.Encode(Message{From: i, To: j, Kind: KindControl}); err != nil {
					conn.Close()
					return fmt.Errorf("handshake %d->%d: %w", i, j, err)
				}
				network.nodes[i].setConn(j, pc)
			}
		}
		return nil
	}()
	wg.Wait()
	closeListeners(listeners)
	if dialErr != nil {
		network.Close()
		return nil, dialErr
	}
	for _, err := range errs {
		if err != nil {
			network.Close()
			return nil, err
		}
	}

	// Start reader pumps now that the mesh is complete.
	for _, node := range network.nodes {
		node.startReaders()
	}
	return network, nil
}

func closeListeners(ls []net.Listener) {
	for _, l := range ls {
		if l != nil {
			l.Close()
		}
	}
}

// Node returns the endpoint of party id.
func (t *TCPNetwork) Node(id int) Node { return t.nodes[id] }

// Size returns the number of parties.
func (t *TCPNetwork) Size() int { return len(t.nodes) }

// Stats returns cumulative traffic counters.
func (t *TCPNetwork) Stats() Stats { return t.stats.snapshot() }

// Instrument mirrors subsequent traffic into reg (per-kind message and
// byte counters).
func (t *TCPNetwork) Instrument(reg *metrics.Registry) { t.stats.instrument(reg) }

// Metrics returns the registry installed by Instrument, or nil.
func (t *TCPNetwork) Metrics() *metrics.Registry { return t.stats.registry() }

// SetTraceSpan installs sp as the active span: subsequent messages carry
// its trace id (across the gob framing) and their traffic accumulates on
// it.
func (t *TCPNetwork) SetTraceSpan(sp *trace.Span) { t.stats.setSpan(sp) }

// TraceSpan returns the span installed by SetTraceSpan, or nil.
func (t *TCPNetwork) TraceSpan() *trace.Span { return t.stats.traceSpan() }

// Close shuts down every node and joins all reader goroutines.
func (t *TCPNetwork) Close() error {
	var first error
	for _, node := range t.nodes {
		if err := node.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

type peerConn struct {
	conn net.Conn
	mu   sync.Mutex // serialises writes
	enc  *gob.Encoder
	dec  *gob.Decoder
}

func (p *peerConn) send(m Message) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.enc.Encode(m)
}

type tcpNode struct {
	id  int
	net *TCPNetwork
	mb  *mailbox

	mu      sync.Mutex
	conns   []*peerConn
	readers sync.WaitGroup
	closed  bool
}

var _ Node = (*tcpNode)(nil)

func (n *tcpNode) setConn(peer int, pc *peerConn) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.conns[peer] = pc
}

func (n *tcpNode) startReaders() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for peer, pc := range n.conns {
		if pc == nil || peer == n.id {
			continue
		}
		n.readers.Add(1)
		go func(pc *peerConn) {
			defer n.readers.Done()
			for {
				var m Message
				if err := pc.dec.Decode(&m); err != nil {
					return // connection closed
				}
				if n.mb.put(m) != nil {
					return
				}
			}
		}(pc)
	}
}

func (n *tcpNode) ID() int   { return n.id }
func (n *tcpNode) Size() int { return len(n.net.nodes) }

func (n *tcpNode) Send(to int, m Message) error {
	if to < 0 || to >= len(n.net.nodes) {
		return fmt.Errorf("transport: destination %d out of range [0,%d)", to, len(n.net.nodes))
	}
	m.From = n.id
	m.To = to
	n.net.stats.stamp(&m)
	n.net.stats.record(m)
	if to == n.id {
		return n.mb.put(m)
	}
	n.mu.Lock()
	pc := n.conns[to]
	closed := n.closed
	n.mu.Unlock()
	if closed || pc == nil {
		return ErrClosed
	}
	return pc.send(m)
}

func (n *tcpNode) Recv() (Message, error) {
	return n.mb.take()
}

func (n *tcpNode) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	conns := make([]*peerConn, len(n.conns))
	copy(conns, n.conns)
	n.mu.Unlock()

	for _, pc := range conns {
		if pc != nil {
			pc.conn.Close()
		}
	}
	n.mb.close()
	n.readers.Wait()
	return nil
}
