package transport

import (
	"context"
	"testing"

	"repro/internal/trace"
)

// startSpan returns a live span from a throwaway tracer.
func startSpan(t *testing.T) (*trace.Tracer, *trace.Span) {
	t.Helper()
	tr := trace.New(2)
	_, sp := tr.StartRoot(context.Background(), "net")
	if sp == nil {
		t.Fatal("no root span")
	}
	return tr, sp
}

func TestInMemStampsTraceID(t *testing.T) {
	net, err := NewInMem(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	_, sp := startSpan(t)
	if !AttachSpan(net, sp) {
		t.Fatal("AttachSpan refused an in-memory network")
	}
	if SpanOf(net) != sp {
		t.Fatal("SpanOf does not return the attached span")
	}
	if err := net.Node(0).Send(1, Message{Kind: KindControl, Data: []uint64{7}}); err != nil {
		t.Fatal(err)
	}
	got, err := net.Node(1).Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace != uint64(sp.TraceID()) {
		t.Fatalf("received Trace=%x, want %x", got.Trace, uint64(sp.TraceID()))
	}
}

func TestTCPTraceIDSurvivesGob(t *testing.T) {
	net, err := NewTCP(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	_, sp := startSpan(t)
	AttachSpan(net, sp)
	want := uint64(sp.TraceID())
	if err := net.Node(0).Send(1, Message{Kind: KindShare, Seq: 3, Data: []uint64{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	got, err := net.Node(1).Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace != want {
		t.Fatalf("trace id did not survive gob framing: got %x, want %x", got.Trace, want)
	}
	if got.Kind != KindShare || got.Seq != 3 || len(got.Data) != 3 {
		t.Fatalf("message mangled alongside trace header: %+v", got)
	}
}

func TestSpanTrafficAttribution(t *testing.T) {
	net, err := NewInMem(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	tr, sp := startSpan(t)
	AttachSpan(net, sp)
	msg := Message{Kind: KindGMWAnd, Data: []uint64{1, 2}}
	for i := 0; i < 3; i++ {
		if err := net.Node(0).Send(1, msg); err != nil {
			t.Fatal(err)
		}
	}
	sp.End()
	sealed := tr.Recent()[0].Root()
	if sealed.Messages != 3 {
		t.Errorf("span credited %d messages, want 3", sealed.Messages)
	}
	wantBytes := 3 * uint64(msg.wireSize())
	if sealed.Bytes != wantBytes {
		t.Errorf("span credited %d bytes, want %d", sealed.Bytes, wantBytes)
	}
	// Span attribution must agree with the network's own accounting.
	if st := net.Stats(); st.Bytes != wantBytes {
		t.Errorf("network counted %d bytes, want %d", st.Bytes, wantBytes)
	}
}

func TestWireSizeCoversTraceHeader(t *testing.T) {
	m := Message{Kind: KindShare, Data: make([]uint64, 5)}
	// 28-byte header (routing + 4-byte session id + 8-byte trace id) plus
	// 8 bytes per element.
	if got, want := m.wireSize(), 28+8*5; got != want {
		t.Fatalf("wireSize = %d, want %d", got, want)
	}
	empty := Message{Kind: KindControl}
	if got := empty.wireSize(); got != 28 {
		t.Fatalf("empty message wireSize = %d, want 28", got)
	}
}

func TestUntracedMessagesCarryZeroTrace(t *testing.T) {
	net, err := NewInMem(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	if err := net.Node(0).Send(1, Message{Kind: KindControl}); err != nil {
		t.Fatal(err)
	}
	got, err := net.Node(1).Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace != 0 {
		t.Fatalf("untraced message carries trace id %x", got.Trace)
	}
}

func TestFaultyForwardsSpan(t *testing.T) {
	inner, err := NewInMem(2)
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	f := NewFaulty(inner, FaultPlan{})
	_, sp := startSpan(t)
	if !AttachSpan(f, sp) {
		t.Fatal("AttachSpan refused the faulty wrapper")
	}
	if SpanOf(f) != sp || SpanOf(inner) != sp {
		t.Fatal("faulty wrapper did not forward the span to the inner network")
	}
}
