package transport

import (
	"fmt"
	"sync"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// SessionMux multiplexes one physical Network into independent logical
// session networks, so several protocol instances (e.g. concurrent GMW
// identity batches during parallel ε-PPI construction) can share the same
// set of parties without interleaving each other's messages.
//
// Every message sent through a session is stamped with that session's id;
// one pump goroutine per physical node demultiplexes incoming traffic into
// per-(session, node) mailboxes. Messages for a session the local side has
// not opened yet are parked in lazily-created mailboxes, so the two ends
// of a session may open it in any order. Messages for a retired (closed)
// session are dropped.
//
// Each session is a full Network: it has its own traffic counters (so
// per-batch protocol Stats stay exact under concurrency) and its own trace
// span attachment, while Instrument forwards to the physical network so
// registry totals are counted exactly once. Closing a session unblocks its
// receivers without disturbing sibling sessions; closing the mux closes
// the physical network and every session.
type SessionMux struct {
	inner Network

	mu       sync.Mutex
	sessions map[uint32]*sessionNet
	retired  map[uint32]bool
	dead     map[int]bool // physical nodes whose pump has exited
	closed   bool

	pumps sync.WaitGroup
}

// NewSessionMux wraps inner and starts its demultiplexing pumps. The
// caller must not use inner's nodes directly afterwards: all traffic goes
// through sessions, and inner.Recv is owned by the pumps.
func NewSessionMux(inner Network) *SessionMux {
	m := &SessionMux{
		inner:    inner,
		sessions: make(map[uint32]*sessionNet),
		retired:  make(map[uint32]bool),
		dead:     make(map[int]bool),
	}
	for id := 0; id < inner.Size(); id++ {
		m.pumps.Add(1)
		go m.pump(id)
	}
	return m
}

// Size returns the number of parties of the underlying network.
func (m *SessionMux) Size() int { return m.inner.Size() }

// Stats returns the physical network's cumulative traffic across all
// sessions.
func (m *SessionMux) Stats() Stats { return m.inner.Stats() }

// Session returns the logical network with the given id, creating it if
// needed. Ids are chosen by the caller and must be unique over the life of
// the mux: once a session is closed its id is retired and cannot be
// reused (late in-flight messages for it are dropped, so reuse would risk
// cross-talk).
func (m *SessionMux) Session(id uint32) (Network, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, fmt.Errorf("transport: session %d: %w", id, ErrClosed)
	}
	if m.retired[id] {
		return nil, fmt.Errorf("transport: session id %d already retired", id)
	}
	return m.sessionLocked(id), nil
}

// sessionLocked returns (creating if needed) the session net for id.
// Caller holds m.mu.
func (m *SessionMux) sessionLocked(id uint32) *sessionNet {
	s := m.sessions[id]
	if s == nil {
		s = newSessionNet(m, id)
		for node := range m.dead {
			s.boxes[node].close()
		}
		m.sessions[id] = s
	}
	return s
}

// Close shuts down the physical network, waits for the pumps to exit, and
// closes every session. Idempotent.
func (m *SessionMux) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()

	err := m.inner.Close() // unblocks the pumps' Recv
	m.pumps.Wait()

	m.mu.Lock()
	sessions := make([]*sessionNet, 0, len(m.sessions))
	for _, s := range m.sessions {
		sessions = append(sessions, s)
	}
	m.mu.Unlock()
	for _, s := range sessions {
		s.Close()
	}
	return err
}

// pump demultiplexes incoming traffic of one physical node into the
// per-session mailbox for that node. It exits when the physical endpoint
// errors (node closed or transport failure), closing that node's mailbox
// in every session so blocked receivers fail fast instead of hanging.
func (m *SessionMux) pump(node int) {
	defer m.pumps.Done()
	end := m.inner.Node(node)
	for {
		msg, err := end.Recv()
		if err != nil {
			m.mu.Lock()
			m.dead[node] = true
			sessions := make([]*sessionNet, 0, len(m.sessions))
			for _, s := range m.sessions {
				sessions = append(sessions, s)
			}
			m.mu.Unlock()
			for _, s := range sessions {
				s.boxes[node].close()
			}
			return
		}
		m.mu.Lock()
		if m.retired[msg.Session] || m.closed {
			m.mu.Unlock()
			continue // late message for a finished session: drop
		}
		box := m.sessionLocked(msg.Session).boxes[node]
		m.mu.Unlock()
		box.put(msg) // ErrClosed here means the session just retired: drop
	}
}

// retire marks a session id as finished. Called by sessionNet.Close.
func (m *SessionMux) retire(id uint32) {
	m.mu.Lock()
	m.retired[id] = true
	delete(m.sessions, id)
	m.mu.Unlock()
}

// sessionNet is one logical network of a SessionMux. It satisfies
// Network, Instrumenter and SpanCarrier like the built-in transports.
type sessionNet struct {
	mux   *SessionMux
	id    uint32
	stats counter
	boxes []*mailbox
	nodes []*sessionNode
	once  sync.Once
}

func newSessionNet(m *SessionMux, id uint32) *sessionNet {
	s := &sessionNet{mux: m, id: id}
	size := m.inner.Size()
	s.boxes = make([]*mailbox, size)
	s.nodes = make([]*sessionNode, size)
	for i := 0; i < size; i++ {
		s.boxes[i] = newMailbox()
		s.nodes[i] = &sessionNode{sess: s, id: i}
	}
	return s
}

func (s *sessionNet) Node(id int) Node { return s.nodes[id] }
func (s *sessionNet) Size() int        { return len(s.nodes) }
func (s *sessionNet) Stats() Stats     { return s.stats.snapshot() }

// Close retires the session: its id can never be reused, pending receives
// unblock with ErrClosed, and late messages are dropped. The physical
// network and sibling sessions are untouched. Idempotent, always nil.
func (s *sessionNet) Close() error {
	s.once.Do(func() {
		s.mux.retire(s.id)
		for _, mb := range s.boxes {
			mb.close()
		}
	})
	return nil
}

// Instrument forwards to the physical network: registry totals count each
// wire message exactly once no matter how many sessions share the wire.
func (s *sessionNet) Instrument(reg *metrics.Registry) { Instrument(s.mux.inner, reg) }

// Metrics returns the registry installed on the physical network.
func (s *sessionNet) Metrics() *metrics.Registry { return RegistryOf(s.mux.inner) }

// SetTraceSpan attributes this session's traffic (only) to sp, so
// concurrent batches each report exact per-batch traffic on their own
// spans.
func (s *sessionNet) SetTraceSpan(sp *trace.Span) { s.stats.setSpan(sp) }

// TraceSpan returns the span attached to this session.
func (s *sessionNet) TraceSpan() *trace.Span { return s.stats.traceSpan() }

// sessionNode is one party's endpoint inside a session.
type sessionNode struct {
	sess *sessionNet
	id   int
}

func (n *sessionNode) ID() int   { return n.id }
func (n *sessionNode) Size() int { return len(n.sess.nodes) }

// Send stamps the session id and active trace id, accounts the message on
// the session's own counters, and forwards it over the physical node.
func (n *sessionNode) Send(to int, m Message) error {
	m.Session = n.sess.id
	n.sess.stats.stamp(&m)
	if err := n.sess.mux.inner.Node(n.id).Send(to, m); err != nil {
		return err
	}
	n.sess.stats.record(m)
	return nil
}

// Recv blocks until a message for this (session, node) arrives, or the
// session — or this node's physical endpoint — is closed.
func (n *sessionNode) Recv() (Message, error) {
	return n.sess.boxes[n.id].take()
}

// Close closes this party's endpoint within the session only: its pending
// receives unblock, other parties and sessions are unaffected.
func (n *sessionNode) Close() error {
	n.sess.boxes[n.id].close()
	return nil
}
