package transport

import (
	"testing"
	"time"
)

func TestFaultyPassThrough(t *testing.T) {
	inner, err := NewInMem(2)
	if err != nil {
		t.Fatal(err)
	}
	net := NewFaulty(inner, FaultPlan{}) // no faults
	defer net.Close()
	if net.Size() != 2 {
		t.Fatalf("Size = %d", net.Size())
	}
	if err := net.Node(0).Send(1, Message{Kind: KindShare, Data: []uint64{7}}); err != nil {
		t.Fatal(err)
	}
	m, err := net.Node(1).Recv()
	if err != nil || m.Data[0] != 7 {
		t.Fatalf("recv %+v err=%v", m, err)
	}
	if net.Stats().Messages != 1 {
		t.Fatalf("Stats = %+v", net.Stats())
	}
}

func TestFaultyDropsEverything(t *testing.T) {
	inner, err := NewInMem(2)
	if err != nil {
		t.Fatal(err)
	}
	net := NewFaulty(inner, FaultPlan{DropRate: 1, Seed: 1})
	defer net.Close()
	for i := 0; i < 10; i++ {
		if err := net.Node(0).Send(1, Message{Kind: KindShare}); err != nil {
			t.Fatal(err)
		}
	}
	if net.Stats().Messages != 0 {
		t.Fatalf("dropped messages reached the wire: %+v", net.Stats())
	}
}

func TestFaultyCorruptsPayload(t *testing.T) {
	inner, err := NewInMem(2)
	if err != nil {
		t.Fatal(err)
	}
	net := NewFaulty(inner, FaultPlan{CorruptRate: 1, Seed: 2})
	defer net.Close()
	orig := []uint64{1, 2, 3}
	if err := net.Node(0).Send(1, Message{Kind: KindShare, Data: orig}); err != nil {
		t.Fatal(err)
	}
	m, err := net.Node(1).Recv()
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range orig {
		if m.Data[i] != orig[i] {
			same = false
		}
	}
	if same {
		t.Fatal("payload not corrupted")
	}
	if len(m.Data) != len(orig) {
		t.Fatal("corruption changed payload length")
	}
}

func TestFaultyCrashedSender(t *testing.T) {
	inner, err := NewInMem(3)
	if err != nil {
		t.Fatal(err)
	}
	net := NewFaulty(inner, FaultPlan{FailSendFrom: map[int]bool{1: true}, Seed: 3})
	defer net.Close()
	if err := net.Node(1).Send(0, Message{}); err == nil {
		t.Fatal("crashed sender's Send succeeded")
	}
	if err := net.Node(0).Send(1, Message{}); err != nil {
		t.Fatalf("healthy sender failed: %v", err)
	}
}

// RecvTimeout turns a starved receive into a prompt error instead of an
// indefinite hang, so protocols running over a lossy network fail fast.
func TestFaultyRecvTimeout(t *testing.T) {
	inner, err := NewInMem(2)
	if err != nil {
		t.Fatal(err)
	}
	net := NewFaulty(inner, FaultPlan{DropRate: 1, RecvTimeout: 30 * time.Millisecond, Seed: 4})
	defer net.Close()
	if err := net.Node(0).Send(1, Message{Kind: KindShare}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = net.Node(1).Recv()
	if err == nil {
		t.Fatal("Recv on dropped traffic should time out")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Recv took %v, want prompt timeout", elapsed)
	}
}

// With RecvTimeout set but traffic flowing, Recv must still deliver
// messages in order.
func TestFaultyRecvTimeoutDeliversWhenHealthy(t *testing.T) {
	inner, err := NewInMem(2)
	if err != nil {
		t.Fatal(err)
	}
	net := NewFaulty(inner, FaultPlan{RecvTimeout: time.Second})
	defer net.Close()
	for i := 0; i < 5; i++ {
		if err := net.Node(0).Send(1, Message{Kind: KindShare, Seq: uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		m, err := net.Node(1).Recv()
		if err != nil || m.Seq != uint32(i) {
			t.Fatalf("recv #%d: %+v err=%v", i, m, err)
		}
	}
}
