package transport

import (
	"fmt"
)

// Collector wraps a Node with selective receive: protocols frequently need
// "the next message of kind K (and sequence S)" while other kinds arrive
// interleaved. Out-of-profile messages are parked and replayed on later
// matching calls, preserving per-(kind, seq, sender) FIFO order.
type Collector struct {
	node   Node
	parked []Message
}

// NewCollector wraps node.
func NewCollector(node Node) *Collector {
	return &Collector{node: node}
}

// Node returns the underlying node.
func (c *Collector) Node() Node { return c.node }

// Send forwards to the underlying node.
func (c *Collector) Send(to int, m Message) error { return c.node.Send(to, m) }

// RecvKind blocks until a message with the given kind and sequence arrives
// (possibly from the parked backlog).
func (c *Collector) RecvKind(kind Kind, seq uint32) (Message, error) {
	for i, m := range c.parked {
		if m.Kind == kind && m.Seq == seq {
			c.parked = append(c.parked[:i], c.parked[i+1:]...)
			return m, nil
		}
	}
	for {
		m, err := c.node.Recv()
		if err != nil {
			return Message{}, err
		}
		if m.Kind == kind && m.Seq == seq {
			return m, nil
		}
		c.parked = append(c.parked, m)
	}
}

// GatherKind collects exactly n messages of (kind, seq), returning them
// indexed by sender. Duplicate senders are an error (protocol violation).
func (c *Collector) GatherKind(kind Kind, seq uint32, n int) (map[int]Message, error) {
	out := make(map[int]Message, n)
	for len(out) < n {
		m, err := c.RecvKind(kind, seq)
		if err != nil {
			return nil, err
		}
		if _, dup := out[m.From]; dup {
			return nil, fmt.Errorf("transport: duplicate %v/seq=%d message from party %d", kind, seq, m.From)
		}
		out[m.From] = m
	}
	return out, nil
}

// Pending returns the number of parked (unconsumed) messages; useful for
// protocol-hygiene assertions in tests.
func (c *Collector) Pending() int { return len(c.parked) }

// Reset discards the parked backlog and returns the dropped messages, in
// arrival order. Protocols call it between phases when leftover messages
// would indicate a peer protocol violation rather than pending work.
func (c *Collector) Reset() []Message {
	dropped := c.parked
	c.parked = nil
	return dropped
}
