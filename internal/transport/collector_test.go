package transport

import (
	"errors"
	"testing"

	"repro/internal/metrics"
)

// collectorPair returns a 2-party in-memory network plus a collector on
// party 1's endpoint; party 0 is the sender.
func collectorPair(t *testing.T) (Node, *Collector, *InMemNetwork) {
	t.Helper()
	net, err := NewInMem(2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { net.Close() })
	return net.Node(0), NewCollector(net.Node(1)), net
}

func TestCollectorParksAndReplays(t *testing.T) {
	sender, coll, _ := collectorPair(t)
	// Out-of-profile messages arrive first; the wanted one last.
	if err := sender.Send(1, Message{Kind: KindControl, Seq: 9, Data: []uint64{1}}); err != nil {
		t.Fatal(err)
	}
	if err := sender.Send(1, Message{Kind: KindShare, Seq: 2, Data: []uint64{2}}); err != nil {
		t.Fatal(err)
	}
	if err := sender.Send(1, Message{Kind: KindShare, Seq: 1, Data: []uint64{3}}); err != nil {
		t.Fatal(err)
	}

	m, err := coll.RecvKind(KindShare, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Data[0] != 3 {
		t.Fatalf("RecvKind(share,1) = %+v", m)
	}
	if coll.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2 parked", coll.Pending())
	}
	// Parked messages replay without touching the wire.
	m, err = coll.RecvKind(KindControl, 9)
	if err != nil {
		t.Fatal(err)
	}
	if m.Data[0] != 1 {
		t.Fatalf("replayed message = %+v", m)
	}
	m, err = coll.RecvKind(KindShare, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Data[0] != 2 {
		t.Fatalf("replayed message = %+v", m)
	}
	if coll.Pending() != 0 {
		t.Fatalf("Pending = %d after draining", coll.Pending())
	}
}

func TestCollectorGatherMergesBySender(t *testing.T) {
	net, err := NewInMem(4)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	coll := NewCollector(net.Node(0))
	// Parties 1..3 each send one supershare, interleaved with noise.
	for id := 1; id < 4; id++ {
		if err := net.Node(id).Send(0, Message{Kind: KindControl, Seq: 7}); err != nil {
			t.Fatal(err)
		}
		if err := net.Node(id).Send(0, Message{Kind: KindSuperShare, Seq: 0, Data: []uint64{uint64(id)}}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := coll.GatherKind(KindSuperShare, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("gathered %d messages, want 3", len(got))
	}
	for id := 1; id < 4; id++ {
		if got[id].Data[0] != uint64(id) {
			t.Fatalf("merge lost sender %d: %+v", id, got)
		}
	}
	// The noise messages stayed parked.
	if coll.Pending() != 3 {
		t.Fatalf("Pending = %d, want 3", coll.Pending())
	}
}

func TestCollectorGatherRejectsDuplicates(t *testing.T) {
	sender, coll, _ := collectorPair(t)
	for i := 0; i < 2; i++ {
		if err := sender.Send(1, Message{Kind: KindSuperShare, Seq: 0, Data: []uint64{9}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := coll.GatherKind(KindSuperShare, 0, 2); err == nil {
		t.Fatal("duplicate sender accepted")
	}
}

func TestCollectorReset(t *testing.T) {
	sender, coll, _ := collectorPair(t)
	if err := sender.Send(1, Message{Kind: KindControl, Seq: 1, Data: []uint64{5}}); err != nil {
		t.Fatal(err)
	}
	if err := sender.Send(1, Message{Kind: KindControl, Seq: 2, Data: []uint64{6}}); err != nil {
		t.Fatal(err)
	}
	if err := sender.Send(1, Message{Kind: KindShare, Seq: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := coll.RecvKind(KindShare, 0); err != nil {
		t.Fatal(err)
	}
	dropped := coll.Reset()
	if len(dropped) != 2 || dropped[0].Seq != 1 || dropped[1].Seq != 2 {
		t.Fatalf("Reset dropped %+v, want the two control messages in order", dropped)
	}
	if coll.Pending() != 0 {
		t.Fatalf("Pending = %d after Reset", coll.Pending())
	}
	if again := coll.Reset(); len(again) != 0 {
		t.Fatalf("second Reset dropped %+v", again)
	}
}

func TestCollectorClosedNode(t *testing.T) {
	_, coll, net := collectorPair(t)
	net.Close()
	if _, err := coll.RecvKind(KindShare, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("RecvKind on closed node = %v, want ErrClosed", err)
	}
}

func TestNetworkInstrumentation(t *testing.T) {
	net, err := NewInMem(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	if RegistryOf(net) != nil {
		t.Fatal("uninstrumented network reported a registry")
	}
	reg := metrics.NewRegistry()
	if !Instrument(net, reg) {
		t.Fatal("Instrument refused an in-memory network")
	}
	if RegistryOf(net) != reg {
		t.Fatal("RegistryOf did not return the installed registry")
	}
	msg := Message{Kind: KindShare, Seq: 1, Data: []uint64{1, 2, 3}}
	if err := net.Node(0).Send(1, msg); err != nil {
		t.Fatal(err)
	}
	wantBytes := uint64(msg.wireSize())
	if got := reg.Counter("eppi_transport_messages_total", "").Value(); got != 1 {
		t.Fatalf("messages_total = %d, want 1", got)
	}
	if got := reg.Counter("eppi_transport_bytes_total", "").Value(); got != wantBytes {
		t.Fatalf("bytes_total = %d, want %d", got, wantBytes)
	}
	if got := reg.Counter("eppi_transport_kind_messages_total", "", metrics.L("kind", KindShare.String())).Value(); got != 1 {
		t.Fatalf("per-kind messages = %d, want 1", got)
	}
	// The legacy Stats() view must agree with the registry.
	if st := net.Stats(); st.Messages != 1 || st.Bytes != wantBytes {
		t.Fatalf("Stats = %+v, want {1 %d}", st, wantBytes)
	}
}

func TestFaultyNetworkForwardsMetrics(t *testing.T) {
	inner, err := NewInMem(2)
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	f := NewFaulty(inner, FaultPlan{})
	reg := metrics.NewRegistry()
	if !Instrument(f, reg) {
		t.Fatal("Instrument refused a faulty wrapper")
	}
	if RegistryOf(f) != reg {
		t.Fatal("faulty wrapper did not forward Metrics()")
	}
	if err := f.Node(0).Send(1, Message{Kind: KindOT}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("eppi_transport_messages_total", "").Value(); got != 1 {
		t.Fatalf("messages_total through wrapper = %d, want 1", got)
	}
}
