package transport

import "sync"

// wordPool recycles []uint64 payload buffers. Protocol hot loops — the
// wide GMW evaluator's per-layer d/e broadcasts, the in-memory network's
// defensive payload copies — otherwise allocate a fresh slice per message
// per AND depth, and those short-lived slices dominate the allocation
// profile of a secure construction. Recycling costs one 24-byte slice
// header per PutWords (the price of a value-slice API over sync.Pool);
// the backing arrays — the allocations that actually matter — are reused.
var wordPool = sync.Pool{
	New: func() any {
		buf := make([]uint64, 0, 256)
		return &buf
	},
}

// GetWords returns a word buffer of length n (contents unspecified) from
// the pool, growing the pooled backing array when it is too small. Pass
// the buffer to PutWords when no goroutine can reach it any more.
func GetWords(n int) []uint64 {
	bp := wordPool.Get().(*[]uint64)
	if cap(*bp) < n {
		*bp = make([]uint64, n)
	}
	return (*bp)[:n]
}

// PutWords recycles a buffer previously handed out by GetWords (or any
// ordinary slice). The caller must not touch buf afterwards: message
// receivers may only recycle Data they exclusively own — which holds for
// every Recv on the in-memory and TCP transports, where each delivered
// Message carries its own backing array.
func PutWords(buf []uint64) {
	if cap(buf) == 0 {
		return
	}
	buf = buf[:0]
	wordPool.Put(&buf)
}
