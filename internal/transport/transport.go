// Package transport provides the message-passing substrate that the ε-PPI
// distributed protocols (SecSumShare, GMW-based CountBelow) run on.
//
// Two interchangeable implementations are provided:
//
//   - an in-memory network (mailbox queues), used by tests, benchmarks and
//     large-scale simulations, and
//   - a real TCP network over loopback (net + gob framing), standing in for
//     the paper's Netty/protobuf stack.
//
// All protocol messages are vectors of field elements plus small routing
// headers, so a single Message type covers every protocol in the repo.
package transport

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// Kind tags the protocol step a message belongs to.
type Kind uint8

// Message kinds used by the protocols in this repository.
const (
	// KindShare carries first-stage SecSumShare shares to a neighbour.
	KindShare Kind = iota + 1
	// KindSuperShare carries a provider's summed super-share to a coordinator.
	KindSuperShare
	// KindGMWShare carries XOR shares of circuit inputs between MPC parties.
	KindGMWShare
	// KindGMWAnd carries masked d/e values for a batch of AND gates.
	KindGMWAnd
	// KindGMWOutput carries output-wire shares during reconstruction.
	KindGMWOutput
	// KindControl carries protocol-control signalling (e.g. barriers).
	KindControl
	// KindOT carries oblivious-transfer protocol messages (triple
	// preprocessing).
	KindOT
)

// String returns a short name for the kind.
func (k Kind) String() string {
	switch k {
	case KindShare:
		return "share"
	case KindSuperShare:
		return "supershare"
	case KindGMWShare:
		return "gmw-share"
	case KindGMWAnd:
		return "gmw-and"
	case KindGMWOutput:
		return "gmw-output"
	case KindControl:
		return "control"
	case KindOT:
		return "ot"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Message is a routed protocol message. Data carries field elements or
// packed bits depending on Kind; Seq disambiguates rounds or batches.
// Session identifies the logical sub-network the message belongs to when a
// physical network is multiplexed by a SessionMux (0 outside a mux), so
// concurrent protocol instances never interleave messages. Trace carries
// the id of the trace active on the sending network (0 when tracing is
// off); both transports round-trip it, so per-trace traffic attribution
// survives gob framing on the TCP path.
type Message struct {
	From    int
	To      int
	Kind    Kind
	Seq     uint32
	Session uint32
	Trace   uint64
	Data    []uint64
}

// wireSize approximates the serialized size of the message in bytes; used
// for traffic accounting in both transports. The 28-byte header is the
// routing fields (From, To, Kind, Seq ≈ 16 bytes), the 4-byte session id,
// and the 8-byte trace id, so Collector traffic numbers stay honest with
// tracing and session multiplexing on.
func (m Message) wireSize() int {
	return 28 + 8*len(m.Data)
}

// ErrClosed is returned by Send/Recv on a closed node.
var ErrClosed = errors.New("transport: node closed")

// Node is one party's endpoint in a network of Size() parties with ids
// 0..Size()-1.
type Node interface {
	// ID returns this party's index.
	ID() int
	// Size returns the total number of parties.
	Size() int
	// Send delivers m to party `to`. The From field is stamped by the node.
	Send(to int, m Message) error
	// Recv blocks until a message arrives or the node is closed.
	Recv() (Message, error)
	// Close releases the endpoint and unblocks pending Recv calls.
	Close() error
}

// Stats aggregates traffic counters for a network.
type Stats struct {
	Messages uint64
	Bytes    uint64
}

// Network owns a set of nodes and their traffic statistics.
type Network interface {
	// Node returns the endpoint of party id.
	Node(id int) Node
	// Size returns the number of parties.
	Size() int
	// Stats returns a snapshot of cumulative traffic.
	Stats() Stats
	// Close shuts down every node.
	Close() error
}

// Instrumenter is implemented by networks that can mirror their traffic
// accounting into a shared metrics registry.
type Instrumenter interface {
	// Instrument mirrors all subsequent traffic into reg.
	Instrument(reg *metrics.Registry)
	// Metrics returns the registry installed by Instrument (nil before).
	Metrics() *metrics.Registry
}

// Instrument wires n's traffic counters into reg if the network supports
// it (both built-in networks do; wrappers forward). It reports whether the
// wiring happened. A nil registry is a no-op.
func Instrument(n Network, reg *metrics.Registry) bool {
	if reg == nil {
		return false
	}
	in, ok := n.(Instrumenter)
	if !ok {
		return false
	}
	in.Instrument(reg)
	return true
}

// RegistryOf returns the metrics registry attached to n, or nil. Protocols
// (secsum, gmw) use it to report phase timers through whatever registry
// the caller instrumented the network with — no signature changes needed.
func RegistryOf(n Network) *metrics.Registry {
	if in, ok := n.(Instrumenter); ok {
		return in.Metrics()
	}
	return nil
}

// SpanCarrier is implemented by networks whose traffic can be attributed
// to an active trace span.
type SpanCarrier interface {
	// SetTraceSpan installs sp as the active span: subsequent messages are
	// stamped with its trace id and their bytes/messages accumulate on it.
	SetTraceSpan(sp *trace.Span)
	// TraceSpan returns the installed span (nil before SetTraceSpan).
	TraceSpan() *trace.Span
}

// AttachSpan installs sp as the active span of n if the network supports
// it (both built-in networks do; wrappers forward). It reports whether the
// wiring happened. A nil span is a no-op.
func AttachSpan(n Network, sp *trace.Span) bool {
	if sp == nil {
		return false
	}
	sc, ok := n.(SpanCarrier)
	if !ok {
		return false
	}
	sc.SetTraceSpan(sp)
	return true
}

// SpanOf returns the span attached to n, or nil. Protocols (secsum, gmw,
// OT preprocessing) use it to hang their phase spans under whatever span
// the caller attached to the network — the same no-signature-change
// pattern as RegistryOf.
func SpanOf(n Network) *trace.Span {
	if sc, ok := n.(SpanCarrier); ok {
		return sc.TraceSpan()
	}
	return nil
}

// maxKind bounds the per-kind instrument arrays (kinds are small iota
// constants starting at 1).
const maxKind = int(KindOT) + 1

// netInstruments mirrors traffic counters into a registry; installed at
// most once per network via counter.instrument.
type netInstruments struct {
	reg      *metrics.Registry
	messages *metrics.Counter
	bytes    *metrics.Counter
	perKindM [maxKind]*metrics.Counter
	perKindB [maxKind]*metrics.Counter
}

// counter is shared traffic accounting.
type counter struct {
	messages atomic.Uint64
	bytes    atomic.Uint64
	inst     atomic.Pointer[netInstruments]
	span     atomic.Pointer[trace.Span]
}

func (c *counter) instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	in := &netInstruments{
		reg:      reg,
		messages: reg.Counter("eppi_transport_messages_total", "Protocol messages sent across all kinds."),
		bytes:    reg.Counter("eppi_transport_bytes_total", "Approximate wire bytes sent across all kinds."),
	}
	for k := 1; k < maxKind; k++ {
		label := metrics.L("kind", Kind(k).String())
		in.perKindM[k] = reg.Counter("eppi_transport_kind_messages_total", "Protocol messages sent, by message kind.", label)
		in.perKindB[k] = reg.Counter("eppi_transport_kind_bytes_total", "Approximate wire bytes sent, by message kind.", label)
	}
	c.inst.Store(in)
}

func (c *counter) registry() *metrics.Registry {
	if in := c.inst.Load(); in != nil {
		return in.reg
	}
	return nil
}

func (c *counter) setSpan(sp *trace.Span) { c.span.Store(sp) }

func (c *counter) traceSpan() *trace.Span { return c.span.Load() }

// stamp writes the active trace id into the message header before it hits
// the wire (a no-op when no span is attached).
func (c *counter) stamp(m *Message) {
	if sp := c.span.Load(); sp != nil {
		m.Trace = uint64(sp.TraceID())
	}
}

func (c *counter) record(m Message) {
	c.messages.Add(1)
	size := uint64(m.wireSize())
	c.bytes.Add(size)
	if in := c.inst.Load(); in != nil {
		in.messages.Inc()
		in.bytes.Add(size)
		if k := int(m.Kind); k > 0 && k < maxKind {
			in.perKindM[k].Inc()
			in.perKindB[k].Add(size)
		}
	}
	if sp := c.span.Load(); sp != nil {
		sp.AddTraffic(1, size)
	}
}

func (c *counter) snapshot() Stats {
	return Stats{Messages: c.messages.Load(), Bytes: c.bytes.Load()}
}

// mailbox is an unbounded FIFO queue with blocking receive. Protocol fan-in
// is unbounded (a coordinator receives from every provider), so an unbounded
// queue is the deadlock-free choice; memory is bounded by protocol design
// (each party sends O(c) vectors per phase).
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	closed bool
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(m Message) error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return ErrClosed
	}
	mb.queue = append(mb.queue, m)
	mb.cond.Signal()
	return nil
}

func (mb *mailbox) take() (Message, error) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for len(mb.queue) == 0 && !mb.closed {
		mb.cond.Wait()
	}
	if len(mb.queue) == 0 {
		return Message{}, ErrClosed
	}
	m := mb.queue[0]
	mb.queue = mb.queue[1:]
	return m, nil
}

func (mb *mailbox) close() {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.closed = true
	mb.cond.Broadcast()
}
