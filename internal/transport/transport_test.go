package transport

import (
	"sync"
	"testing"
)

func testNetwork(t *testing.T, mk func(n int) (Network, error)) {
	t.Helper()

	t.Run("basic send recv", func(t *testing.T) {
		net, err := mk(3)
		if err != nil {
			t.Fatal(err)
		}
		defer net.Close()
		if net.Size() != 3 {
			t.Fatalf("Size = %d", net.Size())
		}
		want := Message{Kind: KindShare, Seq: 7, Data: []uint64{1, 2, 3}}
		if err := net.Node(0).Send(2, want); err != nil {
			t.Fatal(err)
		}
		got, err := net.Node(2).Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got.From != 0 || got.To != 2 || got.Kind != KindShare || got.Seq != 7 {
			t.Fatalf("header mismatch: %+v", got)
		}
		if len(got.Data) != 3 || got.Data[0] != 1 || got.Data[2] != 3 {
			t.Fatalf("payload mismatch: %v", got.Data)
		}
	})

	t.Run("self send", func(t *testing.T) {
		net, err := mk(2)
		if err != nil {
			t.Fatal(err)
		}
		defer net.Close()
		if err := net.Node(1).Send(1, Message{Kind: KindControl}); err != nil {
			t.Fatal(err)
		}
		got, err := net.Node(1).Recv()
		if err != nil || got.From != 1 {
			t.Fatalf("self message: %+v err=%v", got, err)
		}
	})

	t.Run("out of range destination", func(t *testing.T) {
		net, err := mk(2)
		if err != nil {
			t.Fatal(err)
		}
		defer net.Close()
		if err := net.Node(0).Send(5, Message{}); err == nil {
			t.Fatal("destination 5 accepted in 2-party net")
		}
		if err := net.Node(0).Send(-1, Message{}); err == nil {
			t.Fatal("destination -1 accepted")
		}
	})

	t.Run("all-to-all", func(t *testing.T) {
		const n = 5
		net, err := mk(n)
		if err != nil {
			t.Fatal(err)
		}
		defer net.Close()
		var wg sync.WaitGroup
		errCh := make(chan error, 1)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				node := net.Node(i)
				for j := 0; j < n; j++ {
					if j == i {
						continue
					}
					if err := node.Send(j, Message{Kind: KindShare, Data: []uint64{uint64(i)}}); err != nil {
						select {
						case errCh <- err:
						default:
						}
						return
					}
				}
				seen := make(map[int]bool)
				for k := 0; k < n-1; k++ {
					m, err := node.Recv()
					if err != nil {
						select {
						case errCh <- err:
						default:
						}
						return
					}
					if seen[m.From] || m.Data[0] != uint64(m.From) {
						panic("duplicate or corrupted message")
					}
					seen[m.From] = true
				}
			}(i)
		}
		wg.Wait()
		select {
		case err := <-errCh:
			t.Fatal(err)
		default:
		}
		st := net.Stats()
		if st.Messages != uint64(n*(n-1)) {
			t.Fatalf("Messages = %d, want %d", st.Messages, n*(n-1))
		}
		if st.Bytes == 0 {
			t.Fatal("Bytes = 0")
		}
	})

	t.Run("recv unblocks on close", func(t *testing.T) {
		net, err := mk(2)
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() {
			_, err := net.Node(0).Recv()
			done <- err
		}()
		net.Close()
		if err := <-done; err == nil {
			t.Fatal("Recv returned nil after close")
		}
	})
}

func TestInMemNetwork(t *testing.T) {
	testNetwork(t, func(n int) (Network, error) { return NewInMem(n) })
}

func TestTCPNetwork(t *testing.T) {
	testNetwork(t, func(n int) (Network, error) { return NewTCP(n) })
}

func TestNewValidation(t *testing.T) {
	if _, err := NewInMem(0); err == nil {
		t.Error("NewInMem(0) accepted")
	}
	if _, err := NewTCP(-1); err == nil {
		t.Error("NewTCP(-1) accepted")
	}
}

func TestInMemPayloadIsolation(t *testing.T) {
	net, err := NewInMem(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	buf := []uint64{1, 2, 3}
	if err := net.Node(0).Send(1, Message{Kind: KindShare, Data: buf}); err != nil {
		t.Fatal(err)
	}
	buf[0] = 99 // sender reuses its buffer
	got, err := net.Node(1).Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Data[0] != 1 {
		t.Fatalf("receiver saw sender's mutation: %v", got.Data)
	}
}

func TestKindString(t *testing.T) {
	kinds := map[Kind]string{
		KindShare:      "share",
		KindSuperShare: "supershare",
		KindGMWShare:   "gmw-share",
		KindGMWAnd:     "gmw-and",
		KindGMWOutput:  "gmw-output",
		KindControl:    "control",
		Kind(99):       "kind(99)",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestCollectorSelectiveReceive(t *testing.T) {
	net, err := NewInMem(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	// Interleave kinds and seqs from party 0 to party 1.
	send := func(kind Kind, seq uint32, v uint64) {
		t.Helper()
		if err := net.Node(0).Send(1, Message{Kind: kind, Seq: seq, Data: []uint64{v}}); err != nil {
			t.Fatal(err)
		}
	}
	send(KindGMWAnd, 2, 22)
	send(KindShare, 1, 11)
	send(KindGMWAnd, 1, 21)

	c := NewCollector(net.Node(1))
	m, err := c.RecvKind(KindShare, 1)
	if err != nil || m.Data[0] != 11 {
		t.Fatalf("RecvKind(share,1) = %+v err=%v", m, err)
	}
	if c.Pending() != 1 { // KindGMWAnd seq=2 parked; seq=1 not read yet
		t.Fatalf("Pending = %d, want 1", c.Pending())
	}
	m, err = c.RecvKind(KindGMWAnd, 1)
	if err != nil || m.Data[0] != 21 {
		t.Fatalf("RecvKind(and,1) = %+v err=%v", m, err)
	}
	m, err = c.RecvKind(KindGMWAnd, 2)
	if err != nil || m.Data[0] != 22 {
		t.Fatalf("RecvKind(and,2) = %+v err=%v", m, err)
	}
	if c.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", c.Pending())
	}
}

func TestCollectorGather(t *testing.T) {
	net, err := NewInMem(4)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	for i := 1; i < 4; i++ {
		if err := net.Node(i).Send(0, Message{Kind: KindSuperShare, Seq: 3, Data: []uint64{uint64(i * 10)}}); err != nil {
			t.Fatal(err)
		}
	}
	c := NewCollector(net.Node(0))
	got, err := c.GatherKind(KindSuperShare, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		if got[i].Data[0] != uint64(i*10) {
			t.Fatalf("gather[%d] = %v", i, got[i].Data)
		}
	}
}

func TestCollectorGatherDuplicate(t *testing.T) {
	net, err := NewInMem(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	for i := 0; i < 2; i++ {
		if err := net.Node(1).Send(0, Message{Kind: KindSuperShare, Seq: 0}); err != nil {
			t.Fatal(err)
		}
	}
	c := NewCollector(net.Node(0))
	if _, err := c.GatherKind(KindSuperShare, 0, 2); err == nil {
		t.Fatal("duplicate sender accepted")
	}
}

func BenchmarkInMemRoundTrip(b *testing.B) {
	net, err := NewInMem(2)
	if err != nil {
		b.Fatal(err)
	}
	defer net.Close()
	payload := make([]uint64, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := net.Node(0).Send(1, Message{Kind: KindShare, Data: payload}); err != nil {
			b.Fatal(err)
		}
		if _, err := net.Node(1).Recv(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTCPRoundTrip(b *testing.B) {
	net, err := NewTCP(2)
	if err != nil {
		b.Fatal(err)
	}
	defer net.Close()
	payload := make([]uint64, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := net.Node(0).Send(1, Message{Kind: KindShare, Data: payload}); err != nil {
			b.Fatal(err)
		}
		if _, err := net.Node(1).Recv(); err != nil {
			b.Fatal(err)
		}
	}
}
