package transport

import "testing"

func TestGetWordsLengthAndReuse(t *testing.T) {
	b := GetWords(10)
	if len(b) != 10 {
		t.Fatalf("GetWords(10) length = %d", len(b))
	}
	for i := range b {
		b[i] = uint64(i)
	}
	PutWords(b)

	// A smaller request may be served from the recycled backing array;
	// only the requested length must be visible.
	c := GetWords(4)
	if len(c) != 4 {
		t.Fatalf("GetWords(4) length = %d", len(c))
	}
	PutWords(c)

	// A larger request must grow.
	d := GetWords(1 << 12)
	if len(d) != 1<<12 {
		t.Fatalf("GetWords(4096) length = %d", len(d))
	}
	PutWords(d)
}

func TestPutWordsZeroCap(t *testing.T) {
	PutWords(nil)           // must not panic or pool a useless header
	PutWords([]uint64{}[:]) // zero-cap literal
	b := GetWords(1)
	if len(b) != 1 {
		t.Fatalf("GetWords(1) length = %d", len(b))
	}
	PutWords(b)
}

// The steady state — get, fill, put — must reuse the backing array; only
// the slice-header boxing on Put may allocate (one 24-byte header/op).
func TestGetWordsSteadyStateAllocs(t *testing.T) {
	b := GetWords(1 << 16)
	PutWords(b)
	allocs := testing.AllocsPerRun(100, func() {
		w := GetWords(1 << 16)
		w[0] = 1
		PutWords(w)
	})
	if allocs > 1 {
		t.Fatalf("steady-state GetWords/PutWords allocates %.1f per op, want <= 1 (array not reused)", allocs)
	}
}
