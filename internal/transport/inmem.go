package transport

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// InMemNetwork is a process-local network of n parties backed by mailbox
// queues. It is deterministic enough for tests (FIFO per sender-receiver
// pair) and fast enough to simulate thousands of providers.
type InMemNetwork struct {
	nodes []*inMemNode
	stats counter
}

var _ Network = (*InMemNetwork)(nil)

// NewInMem creates an in-memory network with n parties.
func NewInMem(n int) (*InMemNetwork, error) {
	if n <= 0 {
		return nil, fmt.Errorf("transport: party count %d must be > 0", n)
	}
	net := &InMemNetwork{nodes: make([]*inMemNode, n)}
	for i := range net.nodes {
		net.nodes[i] = &inMemNode{id: i, net: net, mb: newMailbox()}
	}
	return net, nil
}

// Node returns the endpoint of party id.
func (n *InMemNetwork) Node(id int) Node { return n.nodes[id] }

// Size returns the number of parties.
func (n *InMemNetwork) Size() int { return len(n.nodes) }

// Stats returns cumulative traffic counters.
func (n *InMemNetwork) Stats() Stats { return n.stats.snapshot() }

// Instrument mirrors subsequent traffic into reg (per-kind message and
// byte counters); protocols running over this network also pick reg up
// via RegistryOf for their phase timers.
func (n *InMemNetwork) Instrument(reg *metrics.Registry) { n.stats.instrument(reg) }

// Metrics returns the registry installed by Instrument, or nil.
func (n *InMemNetwork) Metrics() *metrics.Registry { return n.stats.registry() }

// SetTraceSpan installs sp as the active span: subsequent messages carry
// its trace id and their traffic accumulates on it.
func (n *InMemNetwork) SetTraceSpan(sp *trace.Span) { n.stats.setSpan(sp) }

// TraceSpan returns the span installed by SetTraceSpan, or nil.
func (n *InMemNetwork) TraceSpan() *trace.Span { return n.stats.traceSpan() }

// Close shuts down all nodes.
func (n *InMemNetwork) Close() error {
	for _, node := range n.nodes {
		node.mb.close()
	}
	return nil
}

type inMemNode struct {
	id  int
	net *InMemNetwork
	mb  *mailbox
}

var _ Node = (*inMemNode)(nil)

func (n *inMemNode) ID() int   { return n.id }
func (n *inMemNode) Size() int { return len(n.net.nodes) }

func (n *inMemNode) Send(to int, m Message) error {
	if to < 0 || to >= len(n.net.nodes) {
		return fmt.Errorf("transport: destination %d out of range [0,%d)", to, len(n.net.nodes))
	}
	m.From = n.id
	m.To = to
	n.net.stats.stamp(&m)
	// Copy the payload so sender-side reuse of buffers cannot race with the
	// receiver (slices share backing arrays across goroutines otherwise).
	// The copy comes from the shared word pool; receivers that finish with
	// a message may hand Data back via PutWords.
	if m.Data != nil {
		data := GetWords(len(m.Data))
		copy(data, m.Data)
		m.Data = data
	}
	n.net.stats.record(m)
	return n.net.nodes[to].mb.put(m)
}

func (n *inMemNode) Recv() (Message, error) {
	return n.mb.take()
}

func (n *inMemNode) Close() error {
	n.mb.close()
	return nil
}
