package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// FaultPlan configures deterministic fault injection for tests: the ε-PPI
// protocols are expected to fail loudly (return errors) rather than hang or
// silently mis-compute when the network misbehaves.
type FaultPlan struct {
	// DropRate is the probability that a message is silently dropped.
	DropRate float64
	// CorruptRate is the probability that a message's payload is replaced
	// with random field elements of the same length.
	CorruptRate float64
	// FailSendFrom makes every Send from the listed party ids fail
	// immediately (a crashed node).
	FailSendFrom map[int]bool
	// RecvTimeout, when positive, bounds every Recv: a receive that sees
	// no message for this long fails instead of blocking forever. Dropped
	// messages would otherwise stall the receiving protocol indefinitely;
	// with a timeout the fault surfaces as a prompt error.
	RecvTimeout time.Duration
	// Seed drives the fault randomness.
	Seed int64
}

// FaultyNetwork wraps a Network and injects faults on Send.
type FaultyNetwork struct {
	inner Network
	plan  FaultPlan

	mu  sync.Mutex
	rng *rand.Rand

	nodes []*faultyNode
}

var _ Network = (*FaultyNetwork)(nil)

// NewFaulty wraps inner with the given fault plan.
func NewFaulty(inner Network, plan FaultPlan) *FaultyNetwork {
	f := &FaultyNetwork{
		inner: inner,
		plan:  plan,
		rng:   rand.New(rand.NewSource(plan.Seed)),
		nodes: make([]*faultyNode, inner.Size()),
	}
	for i := range f.nodes {
		f.nodes[i] = &faultyNode{net: f, inner: inner.Node(i)}
		if plan.RecvTimeout > 0 {
			f.nodes[i].ch = make(chan recvResult)
			f.nodes[i].done = make(chan struct{})
		}
	}
	return f
}

// Node returns the fault-wrapped endpoint of party id.
func (f *FaultyNetwork) Node(id int) Node { return f.nodes[id] }

// Size returns the number of parties.
func (f *FaultyNetwork) Size() int { return f.inner.Size() }

// Stats returns the inner network's counters (faulted sends that were
// dropped do not reach the wire and are not counted).
func (f *FaultyNetwork) Stats() Stats { return f.inner.Stats() }

// Close closes the inner network and stops any timeout reader goroutines.
func (f *FaultyNetwork) Close() error {
	err := f.inner.Close()
	for _, n := range f.nodes {
		n.stop()
	}
	return err
}

// Instrument forwards to the inner network when it supports metrics.
func (f *FaultyNetwork) Instrument(reg *metrics.Registry) { Instrument(f.inner, reg) }

// Metrics returns the inner network's registry, or nil.
func (f *FaultyNetwork) Metrics() *metrics.Registry { return RegistryOf(f.inner) }

// SetTraceSpan forwards to the inner network when it supports tracing.
func (f *FaultyNetwork) SetTraceSpan(sp *trace.Span) { AttachSpan(f.inner, sp) }

// TraceSpan returns the inner network's span, or nil.
func (f *FaultyNetwork) TraceSpan() *trace.Span { return SpanOf(f.inner) }

// decide returns the fate of one message under the plan.
func (f *FaultyNetwork) decide(from int) (drop, corrupt, fail bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.plan.FailSendFrom[from] {
		return false, false, true
	}
	r := f.rng.Float64()
	if r < f.plan.DropRate {
		return true, false, false
	}
	if r < f.plan.DropRate+f.plan.CorruptRate {
		return false, true, false
	}
	return false, false, false
}

func (f *FaultyNetwork) corruptPayload(data []uint64) []uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]uint64, len(data))
	for i := range out {
		out[i] = f.rng.Uint64()
	}
	return out
}

type faultyNode struct {
	net   *FaultyNetwork
	inner Node

	// Timeout-receive plumbing, used only when plan.RecvTimeout > 0: a
	// single reader goroutine pulls from the inner endpoint and hands
	// messages over ch, so Recv can select against a timer.
	readerOnce sync.Once
	stopOnce   sync.Once
	ch         chan recvResult
	done       chan struct{}
}

type recvResult struct {
	m   Message
	err error
}

var _ Node = (*faultyNode)(nil)

func (n *faultyNode) ID() int   { return n.inner.ID() }
func (n *faultyNode) Size() int { return n.inner.Size() }

func (n *faultyNode) Send(to int, m Message) error {
	drop, corrupt, fail := n.net.decide(n.inner.ID())
	if fail {
		return fmt.Errorf("transport: injected send failure at party %d", n.inner.ID())
	}
	if drop {
		return nil // silently lost in transit
	}
	if corrupt && len(m.Data) > 0 {
		m.Data = n.net.corruptPayload(m.Data)
	}
	return n.inner.Send(to, m)
}

func (n *faultyNode) Recv() (Message, error) {
	d := n.net.plan.RecvTimeout
	if d <= 0 {
		return n.inner.Recv()
	}
	n.readerOnce.Do(func() {
		go func() {
			for {
				m, err := n.inner.Recv()
				select {
				case n.ch <- recvResult{m, err}:
				case <-n.done:
					return
				}
				if err != nil {
					return
				}
			}
		}()
	})
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case r := <-n.ch:
		return r.m, r.err
	case <-timer.C:
		return Message{}, fmt.Errorf("transport: injected recv timeout after %v at party %d", d, n.inner.ID())
	}
}

// stop terminates the timeout reader goroutine, if one was started.
func (n *faultyNode) stop() {
	n.stopOnce.Do(func() {
		if n.done != nil {
			close(n.done)
		}
	})
}

func (n *faultyNode) Close() error {
	err := n.inner.Close()
	n.stop()
	return err
}
