package privacy

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// FileName is the report's name inside an epoch directory.
const FileName = "privacy.json"

// DetailFileName is the operator-only detail document's name inside an
// epoch directory. Unlike privacy.json it is never served over HTTP:
// it carries per-identity data (ε deciles, exact violation counts) that
// must not leave the store's filesystem.
const DetailFileName = "privacy_detail.json"

var (
	// ErrChecksum reports a privacy.json whose self-checksum does not
	// match its content — bit rot or tampering after publication.
	ErrChecksum = errors.New("privacy: report checksum mismatch")
	// ErrNoChecksum reports a report file carrying no checksum at all.
	ErrNoChecksum = errors.New("privacy: report has no checksum")
	// ErrVersion reports a report schema this build cannot interpret.
	ErrVersion = errors.New("privacy: unsupported report version")
)

// encode serializes a report the one canonical way both the writer and
// the verifier use. encoding/json emits struct fields in declaration
// order, so the byte stream is deterministic for a given Report value.
func encode(r *Report) ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// checksum computes the self-CRC of a report: the CRC32 (IEEE) of its
// canonical encoding with the Checksum field empty.
func checksum(r *Report) (string, error) {
	cp := *r
	cp.Checksum = ""
	body, err := encode(&cp)
	if err != nil {
		return "", fmt.Errorf("privacy: %w", err)
	}
	return fmt.Sprintf("%08x", crc32.ChecksumIEEE(body)), nil
}

// Sealed returns a copy of r stamped with epoch and its self-checksum
// — the form Decode accepts. Serving paths that compute a report in
// memory (demo nodes without an epoch store) seal it before install so
// clients can verify it like any published one.
func Sealed(r *Report, epoch uint64) (*Report, error) {
	cp := *r
	cp.Epoch = epoch
	sum, err := checksum(&cp)
	if err != nil {
		return nil, err
	}
	cp.Checksum = sum
	return &cp, nil
}

// Seal stamps the epoch and self-checksum onto a report, returning the
// bytes WriteFile would persist.
func Seal(r *Report, epoch uint64) ([]byte, error) {
	cp, err := Sealed(r, epoch)
	if err != nil {
		return nil, err
	}
	raw, err := encode(cp)
	if err != nil {
		return nil, fmt.Errorf("privacy: %w", err)
	}
	return append(raw, '\n'), nil
}

// WriteFile seals the report for epoch and writes it as privacy.json
// into dir via write-temp + rename, so readers never observe a torn
// report. The report file stays human-readable JSON: the checksum is a
// field of the document, not a binary frame around it — `cat` works,
// and any edit (even reformatting) invalidates the seal.
func WriteFile(dir string, r *Report, epoch uint64) error {
	raw, err := Seal(r, epoch)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, "."+FileName+".tmp")
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("privacy: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, FileName)); err != nil {
		return fmt.Errorf("privacy: %w", err)
	}
	return nil
}

// Decode parses a sealed report and verifies its self-checksum by
// re-encoding the document with the checksum cleared and comparing
// CRCs. Whitespace or field-order edits change the canonical encoding
// and fail the check — the seal covers the document as written.
func Decode(raw []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("privacy: %w", err)
	}
	if r.Version != Version {
		return nil, fmt.Errorf("%w: %d (want %d)", ErrVersion, r.Version, Version)
	}
	if r.Checksum == "" {
		return nil, ErrNoChecksum
	}
	want, err := checksum(&r)
	if err != nil {
		return nil, err
	}
	if want != r.Checksum {
		return nil, fmt.Errorf("%w: have %s, computed %s", ErrChecksum, r.Checksum, want)
	}
	return &r, nil
}

// ReadFile loads and verifies dir/privacy.json.
func ReadFile(dir string) (*Report, error) {
	raw, err := os.ReadFile(filepath.Join(dir, FileName))
	if err != nil {
		return nil, fmt.Errorf("privacy: %w", err)
	}
	return Decode(raw)
}

// encodeDetail and detailChecksum mirror encode/checksum for the
// operator detail document: same canonical indented JSON, same
// checksum-blank CRC.
func encodeDetail(d *Detail) ([]byte, error) {
	return json.MarshalIndent(d, "", "  ")
}

func detailChecksum(d *Detail) (string, error) {
	cp := *d
	cp.Checksum = ""
	body, err := encodeDetail(&cp)
	if err != nil {
		return "", fmt.Errorf("privacy: %w", err)
	}
	return fmt.Sprintf("%08x", crc32.ChecksumIEEE(body)), nil
}

// WriteDetailFile seals the detail for epoch and writes it as
// privacy_detail.json into dir via write-temp + rename. The file is
// created 0600: it is an operator artifact, readable only by the store
// owner, and serving paths must never pick it up.
func WriteDetailFile(dir string, d *Detail, epoch uint64) error {
	cp := *d
	cp.Epoch = epoch
	sum, err := detailChecksum(&cp)
	if err != nil {
		return err
	}
	cp.Checksum = sum
	raw, err := encodeDetail(&cp)
	if err != nil {
		return fmt.Errorf("privacy: %w", err)
	}
	raw = append(raw, '\n')
	tmp := filepath.Join(dir, "."+DetailFileName+".tmp")
	if err := os.WriteFile(tmp, raw, 0o600); err != nil {
		return fmt.Errorf("privacy: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, DetailFileName)); err != nil {
		return fmt.Errorf("privacy: %w", err)
	}
	return nil
}

// DecodeDetail parses a sealed detail document and verifies its
// self-checksum, exactly like Decode does for reports.
func DecodeDetail(raw []byte) (*Detail, error) {
	var d Detail
	if err := json.Unmarshal(raw, &d); err != nil {
		return nil, fmt.Errorf("privacy: %w", err)
	}
	if d.Version != Version {
		return nil, fmt.Errorf("%w: %d (want %d)", ErrVersion, d.Version, Version)
	}
	if d.Checksum == "" {
		return nil, ErrNoChecksum
	}
	want, err := detailChecksum(&d)
	if err != nil {
		return nil, err
	}
	if want != d.Checksum {
		return nil, fmt.Errorf("%w: have %s, computed %s", ErrChecksum, d.Checksum, want)
	}
	return &d, nil
}

// ReadDetailFile loads and verifies dir/privacy_detail.json.
func ReadDetailFile(dir string) (*Detail, error) {
	raw, err := os.ReadFile(filepath.Join(dir, DetailFileName))
	if err != nil {
		return nil, fmt.Errorf("privacy: %w", err)
	}
	return DecodeDetail(raw)
}

// DiffResult summarizes how the privacy posture moved between two
// epochs' reports — the offline analyzer's "is it drifting?" view.
type DiffResult struct {
	FromEpoch uint64 `json:"from_epoch"`
	ToEpoch   uint64 `json:"to_epoch"`
	// From/To pairs: [0] is the older report's value, [1] the newer's.
	Identities   [2]int     `json:"identities"`
	Providers    [2]int     `json:"providers"`
	Commons      [2]int     `json:"commons"`
	Violations   [2]int     `json:"violations"`
	MixRatio     [2]float64 `json:"mix_ratio"`
	SuccessRatio [2]float64 `json:"success_ratio"`
	// BucketFP is the achieved FP rate per ε decile, older vs newer.
	BucketFP [NumBuckets][2]float64 `json:"bucket_fp"`
}

// Diff compares two reports, oldest first.
func Diff(from, to *Report) *DiffResult {
	d := &DiffResult{
		FromEpoch:    from.Epoch,
		ToEpoch:      to.Epoch,
		Identities:   [2]int{from.Identities, to.Identities},
		Providers:    [2]int{from.Providers, to.Providers},
		Commons:      [2]int{from.Commons, to.Commons},
		Violations:   [2]int{from.ViolationCount, to.ViolationCount},
		MixRatio:     [2]float64{from.MixRatio, to.MixRatio},
		SuccessRatio: [2]float64{from.SuccessRatio, to.SuccessRatio},
	}
	for i := 0; i < NumBuckets; i++ {
		if i < len(from.Buckets) {
			d.BucketFP[i][0] = from.Buckets[i].AchievedFP
		}
		if i < len(to.Buckets) {
			d.BucketFP[i][1] = to.Buckets[i].AchievedFP
		}
	}
	return d
}
