package privacy

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bitmat"
	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// handInput builds a 4-provider, 4-identity scenario with every case:
//
//	col 0: revealed, 1 true + 1 false positive, ε=0.4 → fp=0.5 ok
//	col 1: revealed, 2 true + 0 false positives, ε=0.5 → fp=0 VIOLATION
//	col 2: hidden all-ones, 4 true (true common), ε=0.95
//	col 3: hidden all-ones, 1 true (mixed-in decoy), ε=0.05
func handInput() Input {
	truth := bitmat.MustNew(4, 4)
	truth.Set(0, 0, true)
	truth.Set(0, 1, true)
	truth.Set(1, 1, true)
	for r := 0; r < 4; r++ {
		truth.Set(r, 2, true)
	}
	truth.Set(2, 3, true)

	pub := truth.Clone()
	pub.Set(3, 0, true) // the false positive of col 0
	for r := 0; r < 4; r++ {
		pub.Set(r, 2, true)
		pub.Set(r, 3, true)
	}

	return Input{
		Truth:      truth,
		Published:  pub,
		Names:      []string{"a", "b", "c", "d"},
		Eps:        []float64{0.4, 0.5, 0.95, 0.05},
		Thresholds: []uint64{5, 5, 3, 5}, // only col 2 reaches its threshold
		Hidden:     []bool{false, false, true, true},
		Policy:     "chernoff",
		Gamma:      0.9,
		Lambda:     0.25,
		Xi:         0.5,
	}
}

func TestComputeHandScenario(t *testing.T) {
	r, det, err := Compute(handInput())
	if err != nil {
		t.Fatal(err)
	}
	if r.Providers != 4 || r.Identities != 4 {
		t.Fatalf("dims: %d providers, %d identities", r.Providers, r.Identities)
	}
	if r.Commons != 1 {
		t.Errorf("Commons = %d, want 1", r.Commons)
	}
	if r.PublishedCommons != 2 || r.MixedIn != 1 {
		t.Errorf("PublishedCommons = %d MixedIn = %d, want 2 / 1", r.PublishedCommons, r.MixedIn)
	}
	if r.MixRatio != 0.5 {
		t.Errorf("MixRatio = %v, want 0.5", r.MixRatio)
	}
	if r.ViolationCount != 1 || len(r.Violations) != 1 {
		t.Fatalf("violations: count %d, list %v", r.ViolationCount, r.Violations)
	}
	// The public violation entry is redacted to name + ε: the exact
	// counts would reveal the violator's true provider count.
	v := r.Violations[0]
	if v.Name != "b" || v.Epsilon != 0.5 {
		t.Errorf("violation = %+v", v)
	}
	if len(det.Violations) != 1 {
		t.Fatalf("detail violations = %+v", det.Violations)
	}
	dv := det.Violations[0]
	if dv.Name != "b" || dv.Epsilon != 0.5 || dv.AchievedFP != 0 || dv.Published != 2 || dv.FalsePositives != 0 {
		t.Errorf("detail violation = %+v", dv)
	}
	if r.SuccessRatio != 0.5 {
		t.Errorf("SuccessRatio = %v, want 0.5 (1 of 2 revealed)", r.SuccessRatio)
	}
	// Col 0: ε=0.4 → decile 4; achieved fp 0.5.
	b4 := r.Buckets[4]
	if b4.Identities != 1 || b4.AchievedFP != 0.5 || b4.GuaranteedFP != 0.4 || b4.Violations != 0 {
		t.Errorf("bucket 4 = %+v", b4)
	}
	// Col 1: ε=0.5 → decile 5; achieved fp 0, violated.
	b5 := r.Buckets[5]
	if b5.Identities != 1 || b5.AchievedFP != 0 || b5.Violations != 1 || b5.MinFP != 0 {
		t.Errorf("bucket 5 = %+v", b5)
	}
	// Hidden identities land in their decile's hidden count, not the
	// revealed histogram.
	if r.Buckets[9].Hidden != 1 || r.Buckets[0].Hidden != 1 {
		t.Errorf("hidden counts: bucket9 %+v bucket0 %+v", r.Buckets[9], r.Buckets[0])
	}
	// The identity→decile map lives in the operator detail only.
	if got := []uint8{det.IdentityBuckets["a"], det.IdentityBuckets["b"], det.IdentityBuckets["c"], det.IdentityBuckets["d"]}; got[0] != 4 || got[1] != 5 || got[2] != 9 || got[3] != 0 {
		t.Errorf("IdentityBuckets = %v", got)
	}
}

// TestReportCarriesNoPerIdentityData pins the redaction the privacy
// model depends on: the serialized public report must not contain the
// identity→decile map or per-violation counts, in field name or value.
func TestReportCarriesNoPerIdentityData(t *testing.T) {
	r, _, err := Compute(handInput())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := Seal(r, 1)
	if err != nil {
		t.Fatal(err)
	}
	// achieved_fp appears only in the per-decile aggregates; the
	// per-identity forms live in the detail document alone.
	for _, leak := range []string{"identity_buckets", "false_positives"} {
		if strings.Contains(string(raw), leak) {
			t.Errorf("sealed public report contains %q:\n%s", leak, raw)
		}
	}
	var asMap map[string]any
	if err := json.Unmarshal(raw, &asMap); err != nil {
		t.Fatal(err)
	}
	for _, v := range asMap["violations"].([]any) {
		entry := v.(map[string]any)
		for k := range entry {
			if k != "name" && k != "epsilon" {
				t.Errorf("public violation entry carries %q: %v", k, entry)
			}
		}
	}
}

// TestBucketMeansSkipEmptyColumns pins the denominator of the bucket
// statistics: the achieved-FP mean and minimum cover only revealed
// identities with published positives, and a bucket with none of them
// reports MinFP 0 instead of its init value 1.
func TestBucketMeansSkipEmptyColumns(t *testing.T) {
	truth := bitmat.MustNew(3, 3)
	truth.Set(0, 0, true)
	pub := truth.Clone()
	pub.Set(1, 0, true) // col 0: 1 true + 1 false → rate 0.5
	// col 1: empty, same decile as col 0; col 2: empty, its own decile.
	r, _, err := Compute(Input{
		Truth:     truth,
		Published: pub,
		Names:     []string{"a", "b", "c"},
		Eps:       []float64{0.45, 0.42, 0.85},
	})
	if err != nil {
		t.Fatal(err)
	}
	b4 := r.Buckets[4]
	if b4.Identities != 2 || b4.AchievedFP != 0.5 || b4.MinFP != 0.5 {
		t.Errorf("bucket 4 = %+v, want mean/min 0.5 over the one identity with positives", b4)
	}
	b8 := r.Buckets[8]
	if b8.Identities != 1 || b8.AchievedFP != 0 || b8.MinFP != 0 {
		t.Errorf("bucket 8 = %+v, want zeroed FP stats (no published positives)", b8)
	}
}

func TestComputeDerivesHiddenFromAllOnes(t *testing.T) {
	in := handInput()
	in.Hidden = nil
	r, _, err := Compute(in)
	if err != nil {
		t.Fatal(err)
	}
	if r.PublishedCommons != 2 || r.MixedIn != 1 {
		t.Errorf("derived hidden: PublishedCommons = %d MixedIn = %d", r.PublishedCommons, r.MixedIn)
	}
}

func TestComputeRejectsRecallBreak(t *testing.T) {
	in := handInput()
	in.Published = in.Published.Clone()
	in.Published.Set(0, 0, false) // drop a true positive
	if _, _, err := Compute(in); !errors.Is(err, ErrRecall) {
		t.Fatalf("err = %v, want ErrRecall", err)
	}
}

func TestComputeShapeErrors(t *testing.T) {
	in := handInput()
	in.Eps = in.Eps[:2]
	if _, _, err := Compute(in); err == nil {
		t.Error("short eps accepted")
	}
	in = handInput()
	in.Thresholds = in.Thresholds[:1]
	if _, _, err := Compute(in); err == nil {
		t.Error("short thresholds accepted")
	}
}

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		eps  float64
		want int
	}{{0, 0}, {0.05, 0}, {0.1, 1}, {0.95, 9}, {1.0, 9}, {-1, 0}, {2, 9}}
	for _, c := range cases {
		if got := BucketIndex(c.eps); got != c.want {
			t.Errorf("BucketIndex(%v) = %d, want %d", c.eps, got, c.want)
		}
	}
	if got := BucketLabel(3); got != "0.3-0.4" {
		t.Errorf("BucketLabel(3) = %q", got)
	}
}

// TestChernoffConstructionMeetsBound is the report-side restatement of
// Theorem 3.1: a Chernoff-policy construction must audit clean — the
// success ratio reaches γ, and for this deterministic seed the violation
// list is empty.
func TestChernoffConstructionMeetsBound(t *testing.T) {
	d, err := workload.GenerateZipf(workload.ZipfConfig{
		Providers: 200, Owners: 150, Exponent: 1.0, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Policy: mathx.PolicyChernoff, Gamma: 0.9, Mode: core.ModeTrusted, Seed: 7}
	res, err := core.Construct(d.Matrix, d.Eps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, _, err := Compute(Input{
		Truth:      d.Matrix,
		Published:  res.Published,
		Names:      d.Names,
		Eps:        d.Eps,
		Thresholds: res.Thresholds,
		Hidden:     res.Hidden,
		Policy:     cfg.Policy.String(),
		Gamma:      cfg.Gamma,
		Lambda:     res.Lambda,
		Xi:         res.Xi,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.SuccessRatio < cfg.Gamma {
		t.Errorf("SuccessRatio = %v, below γ = %v", r.SuccessRatio, cfg.Gamma)
	}
	if r.ViolationCount != 0 {
		t.Errorf("ViolationCount = %d with violations %v", r.ViolationCount, r.Violations)
	}
	if r.Commons != res.CommonCount {
		t.Errorf("Commons = %d, construction counted %d", r.Commons, res.CommonCount)
	}
}

func TestFileRoundTrip(t *testing.T) {
	r, _, err := Compute(handInput())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteFile(dir, r, 42); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 42 {
		t.Errorf("Epoch = %d, want 42", got.Epoch)
	}
	if got.ViolationCount != r.ViolationCount || got.MixRatio != r.MixRatio || len(got.Buckets) != NumBuckets {
		t.Errorf("round trip mangled report: %+v", got)
	}
	if got.Checksum == "" {
		t.Error("read report lost its checksum")
	}
}

func TestFileTamperDetected(t *testing.T) {
	r, _, err := Compute(handInput())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteFile(dir, r, 1); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, FileName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a digit inside the document body (violation_count 1 → 2).
	tampered := strings.Replace(string(raw), `"violation_count": 1`, `"violation_count": 2`, 1)
	if tampered == string(raw) {
		t.Fatal("tamper target not found in report")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(dir); !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
}

func TestDecodeRejectsMissingChecksumAndBadVersion(t *testing.T) {
	if _, err := Decode([]byte(`{"version": 1}`)); !errors.Is(err, ErrNoChecksum) {
		t.Errorf("no checksum: err = %v", err)
	}
	if _, err := Decode([]byte(`{"version": 99, "checksum": "00000000"}`)); !errors.Is(err, ErrVersion) {
		t.Errorf("bad version: err = %v", err)
	}
	if _, err := Decode([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestDiff(t *testing.T) {
	a, _, err := Compute(handInput())
	if err != nil {
		t.Fatal(err)
	}
	a.Epoch = 1
	in := handInput()
	in.Published = in.Published.Clone()
	// Fix col 1's violation: 2 true + 2 false positives → fp rate 0.5 = ε.
	in.Published.Set(2, 1, true)
	in.Published.Set(3, 1, true)
	b, _, err := Compute(in)
	if err != nil {
		t.Fatal(err)
	}
	b.Epoch = 2
	d := Diff(a, b)
	if d.FromEpoch != 1 || d.ToEpoch != 2 {
		t.Errorf("epochs = %d → %d", d.FromEpoch, d.ToEpoch)
	}
	if d.Violations != [2]int{1, 0} {
		t.Errorf("Violations = %v, want [1 0]", d.Violations)
	}
	if d.SuccessRatio[1] != 1 {
		t.Errorf("new SuccessRatio = %v, want 1", d.SuccessRatio[1])
	}
	if d.BucketFP[5][0] != 0 || d.BucketFP[5][1] == 0 {
		t.Errorf("bucket 5 FP = %v", d.BucketFP[5])
	}
}

func TestExportMetrics(t *testing.T) {
	r, _, err := Compute(handInput())
	if err != nil {
		t.Fatal(err)
	}
	r.Epoch = 3
	reg := metrics.NewRegistry()
	Export(reg, r)
	Export(reg, r) // second install: gauges overwrite, counter accumulates
	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"eppi_privacy_epoch 3",
		`eppi_privacy_fp_rate{bucket="0.4-0.5"} 0.5`,
		`eppi_privacy_fp_guaranteed{bucket="0.4-0.5"} 0.4`,
		"eppi_privacy_violations 1",
		"eppi_privacy_violations_total 2",
		"eppi_privacy_mix_ratio 0.5",
		"eppi_privacy_success_ratio 0.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Nil-safety.
	Export(nil, r)
	Export(reg, nil)
}

// TestDetailFileRoundTrip covers the operator-only artifact: sealed
// write, verified read, operator-only permissions, and tamper
// detection via the self-checksum.
func TestDetailFileRoundTrip(t *testing.T) {
	_, det, err := Compute(handInput())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteDetailFile(dir, det, 42); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, DetailFileName)
	if info, err := os.Stat(path); err != nil {
		t.Fatal(err)
	} else if perm := info.Mode().Perm(); perm != 0o600 {
		t.Errorf("detail file mode = %o, want 600 (operator-only)", perm)
	}
	got, err := ReadDetailFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 42 || got.IdentityBuckets["c"] != 9 || len(got.Violations) != 1 {
		t.Errorf("round trip mangled detail: %+v", got)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(raw), `"b": 5`, `"b": 6`, 1)
	if tampered == string(raw) {
		t.Fatal("tamper target not found in detail")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDetailFile(dir); !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
	if _, err := DecodeDetail([]byte(`{"version": 1, "identity_buckets": {}}`)); !errors.Is(err, ErrNoChecksum) {
		t.Errorf("no checksum: err = %v", err)
	}
	if _, err := DecodeDetail([]byte(`{"version": 99, "checksum": "00000000"}`)); !errors.Is(err, ErrVersion) {
		t.Errorf("bad version: err = %v", err)
	}
}
