// Package privacy computes per-epoch ε-audit reports: the achieved
// privacy of a published matrix M' measured against the guarantee the
// construction was configured to provide (PAPER.md §1, Theorem 3.1).
//
// The paper proves the guarantee once, at construction time. A served
// system needs the property re-derived from the artifact actually being
// published — a bug anywhere between β computation and shard export
// would otherwise degrade privacy silently while every latency metric
// stays green. Compute therefore works only from the two matrices and
// the public policy parameters: for every identity j it counts the
// published positives and the false positives among them, checks the
// ε-PRIVATE inequality fp_j ≥ ε_j (Equation 1) for revealed identities,
// and checks the common-identity mixing defence (published commons vs
// the ξ target) for hidden ones.
//
// Compute produces two artifacts with different audiences. The Report
// is public — it travels with the published index and is served at
// GET /v1/privacy — so it carries aggregates only: per-ε-decile
// histograms of achieved vs guaranteed false-positive rates, counts,
// and a violation list redacted to name and ε. Publishing a
// per-identity achieved FP rate or positive count would let anyone
// recover the true frequency of the identity (σ_j·m = pub_j −
// fp_j·pub_j), exactly the quantity ε-PPI exists to hide — and a
// violation entry is where that matters most, because the identity is
// already under-protected. Likewise the identity→ε-decile map is kept
// out of the Report: it is the target list for the common-identity
// attack. Both live in the companion Detail, a store-local operator
// artifact (privacy_detail.json, mode 0600) that is never served over
// HTTP; the offline analyzer (cmd/eppi-audit) reads it from the epoch
// store's filesystem.
package privacy

import (
	"errors"
	"fmt"

	"repro/internal/bitmat"
)

// Version is the report schema version stamped into privacy.json.
const Version = 1

// NumBuckets is the number of ε deciles a report histograms over:
// [0,0.1), [0.1,0.2), …, [0.9,1.0].
const NumBuckets = 10

// MaxViolations bounds the violation list embedded in a report. The
// full count is always in ViolationCount; the list is a sample for
// operators, not an exhaustive dump — a construction bug that breaks
// thousands of identities should not produce a multi-megabyte report.
const MaxViolations = 256

// ErrRecall reports a published matrix that drops true positives — the
// 1→1 rule of Equation 2 is broken, so the index has lost recall and no
// privacy statement about it is meaningful.
var ErrRecall = errors.New("privacy: published matrix does not cover the truth (recall broken)")

// Input is everything Compute needs. Truth, Published, Names and Eps
// are required; the rest refines the report when available.
type Input struct {
	// Truth is the private membership matrix M.
	Truth *bitmat.Matrix
	// Published is the noise-bearing matrix M' actually being published.
	Published *bitmat.Matrix
	// Names are the identity labels, aligned with the matrix columns.
	Names []string
	// Eps are the per-identity privacy degrees ε_j.
	Eps []float64
	// Thresholds are the public common thresholds t_j (m+1: never
	// common). Optional; without them true commons are not counted.
	Thresholds []uint64
	// Hidden marks identities published as common (all-ones columns:
	// true commons plus mixed-in decoys). Optional; derived from
	// Published when nil.
	Hidden []bool
	// Policy names the β policy the construction ran ("basic",
	// "inc-exp", "chernoff").
	Policy string
	// Gamma is the Chernoff success-ratio target γ (0 otherwise).
	Gamma float64
	// Lambda is the mixing probability λ applied to non-commons.
	Lambda float64
	// Xi is the false-positive fraction targeted within the published
	// common set.
	Xi float64
}

// Report is the per-epoch privacy audit written to privacy.json.
// Field order is load-bearing: the self-checksum re-encodes the struct,
// so writer and reader must agree on it (both use this declaration).
type Report struct {
	Version int    `json:"version"`
	Epoch   uint64 `json:"epoch,omitempty"`
	Policy  string `json:"policy"`
	// Gamma is the configured Chernoff success-ratio target; the
	// acceptance check is SuccessRatio >= Gamma (Theorem 3.1).
	Gamma      float64 `json:"gamma,omitempty"`
	Providers  int     `json:"providers"`
	Identities int     `json:"identities"`
	// Commons counts true common identities (frequency >= t_j); -1 when
	// thresholds were not available to the computation.
	Commons int `json:"commons"`
	// PublishedCommons counts all-ones (hidden) columns in M'.
	PublishedCommons int `json:"published_commons"`
	// MixedIn counts hidden columns that are not true commons — the
	// decoys of the common-identity defence; -1 when unknown.
	MixedIn int `json:"mixed_in"`
	// MixRatio is MixedIn / PublishedCommons, the achieved analogue of
	// the ξ target; -1 when unknown, 0 when nothing is published common.
	MixRatio float64 `json:"mix_ratio"`
	Lambda   float64 `json:"lambda"`
	Xi       float64 `json:"xi"`
	// SuccessRatio is the fraction of revealed identities satisfying
	// Equation 1 (fp_j >= ε_j); 1 when nothing is revealed.
	SuccessRatio float64 `json:"success_ratio"`
	// Buckets histogram the revealed identities by ε decile.
	Buckets []Bucket `json:"buckets"`
	// ViolationCount is the total number of Equation 1 violations;
	// Violations is a sample of at most MaxViolations of them, redacted
	// to name and ε (the full per-identity numbers are in the
	// operator-only Detail).
	ViolationCount int         `json:"violation_count"`
	Violations     []Violation `json:"violations,omitempty"`
	// Checksum is the CRC32 (IEEE, hex) of this report serialized with
	// Checksum itself empty — see WriteFile/ReadFile.
	Checksum string `json:"checksum,omitempty"`
}

// Bucket aggregates the revealed identities of one ε decile.
type Bucket struct {
	// Lo and Hi bound the decile: ε in [Lo, Hi) (the last bucket
	// includes 1.0).
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
	// Identities counts revealed identities in the bucket; Hidden the
	// hidden (published-common) ones, which Equation 1 does not govern.
	Identities int `json:"identities"`
	Hidden     int `json:"hidden"`
	// GuaranteedFP is the mean ε of the bucket — the Equation 1 floor
	// each member's achieved FP rate must reach.
	GuaranteedFP float64 `json:"guaranteed_fp"`
	// AchievedFP is the mean achieved false-positive rate over the
	// bucket's revealed identities with published positives.
	AchievedFP float64 `json:"achieved_fp"`
	// MinFP is the worst (lowest) achieved FP rate among the bucket's
	// revealed identities with published positives; 0 when none have any.
	MinFP float64 `json:"min_fp"`
	// Violations counts bucket members failing Equation 1.
	Violations int `json:"violations"`
}

// Violation is one identity whose published column fails Equation 1:
// achieved false-positive rate below its ε. The public entry carries
// only the name and the ε floor that was missed — never the achieved
// rate or the positive counts, which would hand an attacker the exact
// true provider count (pub − fp) of an identity that is already
// under-protected. The full numbers live in ViolationDetail inside the
// operator-only Detail.
type Violation struct {
	Name    string  `json:"name"`
	Epsilon float64 `json:"epsilon"`
}

// ViolationDetail is the operator-side record of one Equation 1
// violation, with the exact achieved rate and counts an operator needs
// to size the repair. It never appears in the served Report.
type ViolationDetail struct {
	Name           string  `json:"name"`
	Epsilon        float64 `json:"epsilon"`
	AchievedFP     float64 `json:"achieved_fp"`
	Published      int     `json:"published"`
	FalsePositives int     `json:"false_positives"`
}

// Detail is the operator-only companion of a Report: the per-identity
// data the public report must not carry. It is written next to
// privacy.json as privacy_detail.json (mode 0600) and read only from
// the store's filesystem — serving it over HTTP would publish every
// identity's privacy demand and every violator's true provider count.
// Field order is load-bearing for the self-checksum, like Report's.
type Detail struct {
	Version int    `json:"version"`
	Epoch   uint64 `json:"epoch,omitempty"`
	// IdentityBuckets maps each identity name to its ε decile — coarse
	// enough not to reveal ε_j exactly, precise enough for the offline
	// analyzer (cmd/eppi-audit) to join query logs against privacy
	// demand. Keyed by name because the global column order is not
	// recoverable from a sharded epoch store. encoding/json sorts map
	// keys, so the serialization stays canonical for the self-checksum.
	IdentityBuckets map[string]uint8 `json:"identity_buckets"`
	// Violations is the detailed violation sample, aligned with the
	// public report's (same identities, same MaxViolations bound).
	Violations []ViolationDetail `json:"violations,omitempty"`
	// Checksum is the CRC32 (IEEE, hex) of this document serialized
	// with Checksum itself empty — see WriteDetailFile/ReadDetailFile.
	Checksum string `json:"checksum,omitempty"`
}

// slack absorbs float rounding in the Equation 1 comparison, matching
// attack.EpsilonPrivate.
const slack = 1e-12

// BucketIndex returns the ε decile of epsilon: 0 for [0,0.1) … 9 for
// [0.9,1.0]. Out-of-range values clamp.
func BucketIndex(epsilon float64) int {
	idx := int(epsilon * NumBuckets)
	if idx < 0 {
		return 0
	}
	if idx >= NumBuckets {
		return NumBuckets - 1
	}
	return idx
}

// BucketLabel renders a decile for metric labels: "0.3-0.4".
func BucketLabel(idx int) string {
	return fmt.Sprintf("%.1f-%.1f", float64(idx)/NumBuckets, float64(idx+1)/NumBuckets)
}

// Compute audits published M' against truth M and the configured
// policy, returning the epoch-agnostic public report and its
// operator-only detail (the Publisher stamps Epoch when it writes the
// files). The report may be served; the detail must stay on the
// operator's filesystem.
func Compute(in Input) (*Report, *Detail, error) {
	t, p := in.Truth, in.Published
	if t == nil || p == nil {
		return nil, nil, errors.New("privacy: nil matrix")
	}
	if t.Rows() != p.Rows() || t.Cols() != p.Cols() {
		return nil, nil, fmt.Errorf("privacy: truth %dx%d vs published %dx%d",
			t.Rows(), t.Cols(), p.Rows(), p.Cols())
	}
	n := t.Cols()
	if len(in.Names) != n || len(in.Eps) != n {
		return nil, nil, fmt.Errorf("privacy: %d columns, %d names, %d eps", n, len(in.Names), len(in.Eps))
	}
	if in.Thresholds != nil && len(in.Thresholds) != n {
		return nil, nil, fmt.Errorf("privacy: %d columns, %d thresholds", n, len(in.Thresholds))
	}
	if in.Hidden != nil && len(in.Hidden) != n {
		return nil, nil, fmt.Errorf("privacy: %d columns, %d hidden flags", n, len(in.Hidden))
	}
	if !p.Covers(t) {
		return nil, nil, ErrRecall
	}

	m := t.Rows()
	r := &Report{
		Version:    Version,
		Policy:     in.Policy,
		Gamma:      in.Gamma,
		Providers:  m,
		Identities: n,
		Commons:    -1,
		MixedIn:    -1,
		MixRatio:   -1,
		Lambda:     in.Lambda,
		Xi:         in.Xi,
		Buckets:    make([]Bucket, NumBuckets),
	}
	for i := range r.Buckets {
		r.Buckets[i].Lo = float64(i) / NumBuckets
		r.Buckets[i].Hi = float64(i+1) / NumBuckets
		r.Buckets[i].MinFP = 1
	}
	if in.Thresholds != nil {
		r.Commons = 0
		r.MixedIn = 0
	}
	det := &Detail{
		Version:         Version,
		IdentityBuckets: make(map[string]uint8, n),
	}

	// epsSum accumulates per-bucket ε means over revealed identities;
	// fpSum and fpCount accumulate the achieved-FP mean over the subset
	// of them with published positives (an empty column has no rate).
	var epsSum, fpSum [NumBuckets]float64
	var fpCount [NumBuckets]int
	revealed, satisfied := 0, 0
	for j := 0; j < n; j++ {
		idx := BucketIndex(in.Eps[j])
		det.IdentityBuckets[in.Names[j]] = uint8(idx)
		b := &r.Buckets[idx]

		pub := p.ColCount(j)
		trueCount := t.ColCount(j)
		hidden := pub == m // all-ones column
		if in.Hidden != nil {
			hidden = in.Hidden[j]
		}
		trueCommon := false
		if in.Thresholds != nil {
			trueCommon = uint64(trueCount) >= in.Thresholds[j]
			if trueCommon {
				r.Commons++
			}
		}
		if hidden {
			r.PublishedCommons++
			b.Hidden++
			if in.Thresholds != nil && !trueCommon {
				r.MixedIn++
			}
			// Hidden columns are governed by the mixing defence (ξ),
			// not Equation 1: their FP rate is 1−σ_j by construction
			// and reveals σ_j exactly, so it stays out of the buckets.
			continue
		}

		fp := pub - trueCount
		fpRate := 0.0
		if pub > 0 {
			fpRate = float64(fp) / float64(pub)
		}
		revealed++
		b.Identities++
		epsSum[idx] += in.Eps[j]
		// Equation 1: attacker confidence 1−fp_j must stay ≤ 1−ε_j,
		// i.e. fp_j ≥ ε_j. An empty column offers nothing to attack.
		ok := pub == 0 || fpRate >= in.Eps[j]-slack
		if ok {
			satisfied++
		} else {
			r.ViolationCount++
			b.Violations++
			if len(r.Violations) < MaxViolations {
				r.Violations = append(r.Violations, Violation{
					Name:    in.Names[j],
					Epsilon: in.Eps[j],
				})
				det.Violations = append(det.Violations, ViolationDetail{
					Name:           in.Names[j],
					Epsilon:        in.Eps[j],
					AchievedFP:     fpRate,
					Published:      pub,
					FalsePositives: fp,
				})
			}
		}
		if pub > 0 {
			fpSum[idx] += fpRate
			fpCount[idx]++
			if fpRate < b.MinFP {
				b.MinFP = fpRate
			}
		}
	}

	for i := range r.Buckets {
		b := &r.Buckets[i]
		if b.Identities > 0 {
			b.GuaranteedFP = epsSum[i] / float64(b.Identities)
		}
		// Achieved-FP statistics are over identities with published
		// positives only: empty columns have no rate to average, and a
		// bucket with none of them has no meaningful minimum either.
		if fpCount[i] > 0 {
			b.AchievedFP = fpSum[i] / float64(fpCount[i])
		} else {
			b.MinFP = 0
		}
	}
	r.SuccessRatio = 1
	if revealed > 0 {
		r.SuccessRatio = float64(satisfied) / float64(revealed)
	}
	if in.Thresholds != nil {
		r.MixRatio = 0
		if r.PublishedCommons > 0 {
			r.MixRatio = float64(r.MixedIn) / float64(r.PublishedCommons)
		}
	}
	return r, det, nil
}
