package privacy

import "repro/internal/metrics"

// Export publishes a report's headline numbers to a metrics registry.
// Gauges describe the report currently installed (they overwrite on
// every epoch swap); the violations counter accumulates across swaps so
// a fleet-wide sum-of-rate alert catches even a single bad publication.
// Safe on a nil registry.
func Export(reg *metrics.Registry, r *Report) {
	if reg == nil || r == nil {
		return
	}
	reg.Gauge("eppi_privacy_epoch", "Epoch of the installed privacy report.").Set(float64(r.Epoch))
	reg.Gauge("eppi_privacy_identities", "Identities audited by the installed privacy report.").Set(float64(r.Identities))
	reg.Gauge("eppi_privacy_commons", "Published-common (hidden) identity columns in the current epoch.").Set(float64(r.PublishedCommons))
	if r.MixRatio >= 0 {
		reg.Gauge("eppi_privacy_mix_ratio", "Achieved decoy fraction within the published common set (target: xi).").Set(r.MixRatio)
	}
	reg.Gauge("eppi_privacy_success_ratio", "Fraction of revealed identities meeting Equation 1 (target: gamma).").Set(r.SuccessRatio)
	reg.Gauge("eppi_privacy_violations", "Equation 1 violations in the installed privacy report.").Set(float64(r.ViolationCount))
	reg.Counter("eppi_privacy_violations_total", "Cumulative Equation 1 violations across installed privacy reports.").
		Add(uint64(r.ViolationCount))
	for i, b := range r.Buckets {
		lbl := metrics.L("bucket", BucketLabel(i))
		reg.Gauge("eppi_privacy_fp_rate", "Mean achieved false-positive rate of revealed identities per epsilon decile.", lbl).
			Set(b.AchievedFP)
		reg.Gauge("eppi_privacy_fp_guaranteed", "Mean guaranteed false-positive floor (epsilon) per epsilon decile.", lbl).
			Set(b.GuaranteedFP)
	}
}
