package shard

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/bitmat"
	"repro/internal/index"
)

// ManifestName is the manifest's file name inside a shard-set directory.
const ManifestName = "manifest.eppi"

// Manifest describes one shard set: the partition parameters plus a
// checksum of every member file. It is persisted inside an index frame
// (FrameManifest), so the manifest itself is versioned and checksummed
// exactly like the snapshots it describes.
type Manifest struct {
	// Shards is the shard count k of the set.
	Shards int
	// Providers and Owners are the dimensions of the full index the set
	// was partitioned from.
	Providers int
	Owners    int
	// Epoch is the publication epoch of the whole set. Every member
	// snapshot carries the same epoch; LoadShard rejects a snapshot whose
	// embedded epoch disagrees with the manifest (a mixed set would serve
	// two index versions as one). Pre-epoch manifests read as 0.
	Epoch uint64
	// Files describes each shard snapshot, indexed by shard id.
	Files []ShardFile
}

// ShardFile is one member snapshot of a shard set.
type ShardFile struct {
	// Name is the snapshot file name, relative to the manifest.
	Name string
	// Owners is the identity count the shard holds.
	Owners int
	// CRC32 is the IEEE checksum of the whole snapshot file.
	CRC32 uint32
	// Size is the snapshot file length in bytes.
	Size int64
}

// FileName returns the canonical snapshot name for shard k.
func FileName(k int) string { return fmt.Sprintf("shard-%03d.idx", k) }

// WriteSet partitions a published index into `of` shards and writes the
// whole set under dir: shard-000.idx … shard-NNN.idx plus ManifestName.
// It returns the manifest it wrote. The set carries epoch 0; re-published
// sets are written through WriteSetAt (or epoch.Publisher).
func WriteSet(dir string, published *bitmat.Matrix, names []string, of int) (*Manifest, error) {
	return WriteSetAt(dir, published, names, of, 0)
}

// WriteSetAt is WriteSet with an explicit publication epoch: every member
// snapshot and the manifest are stamped with it, so a serving node (and
// the gateway behind it) can tell which index version the set is.
func WriteSetAt(dir string, published *bitmat.Matrix, names []string, of int, epoch uint64) (*Manifest, error) {
	shards, err := Partition(published, names, of)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	man := &Manifest{
		Shards:    of,
		Providers: published.Rows(),
		Owners:    len(names),
		Epoch:     epoch,
		Files:     make([]ShardFile, of),
	}
	for k, srv := range shards {
		srv.SetEpoch(epoch)
		var buf bytes.Buffer
		if _, err := srv.WriteTo(&buf); err != nil {
			return nil, fmt.Errorf("shard %d: %w", k, err)
		}
		name := FileName(k)
		if err := os.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644); err != nil {
			return nil, fmt.Errorf("shard %d: %w", k, err)
		}
		man.Files[k] = ShardFile{
			Name:   name,
			Owners: srv.Owners(),
			CRC32:  crc32.ChecksumIEEE(buf.Bytes()),
			Size:   int64(buf.Len()),
		}
	}
	return man, man.write(dir)
}

// write persists the manifest under dir.
func (m *Manifest) write(dir string) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(m); err != nil {
		return fmt.Errorf("shard: encode manifest: %w", err)
	}
	f, err := os.Create(filepath.Join(dir, ManifestName))
	if err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	if _, err := index.WriteFrame(f, index.FrameManifest, payload.Bytes()); err != nil {
		f.Close()
		return fmt.Errorf("shard: write manifest: %w", err)
	}
	return f.Close()
}

// ReadManifest loads and checksum-verifies the manifest in dir.
func ReadManifest(dir string) (*Manifest, error) {
	f, err := os.Open(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	defer f.Close()
	_, payload, err := index.ReadFrame(f, index.FrameManifest)
	if err != nil {
		return nil, fmt.Errorf("shard: manifest %s: %w", ManifestName, err)
	}
	var m Manifest
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&m); err != nil {
		return nil, fmt.Errorf("shard: decode manifest: %w", err)
	}
	if m.Shards < 1 || len(m.Files) != m.Shards {
		return nil, fmt.Errorf("shard: manifest inconsistent: %d shards, %d files", m.Shards, len(m.Files))
	}
	return &m, nil
}

// Verify checks every member file of the set against the manifest:
// presence, size and CRC-32. It reports the first mismatch.
func (m *Manifest) Verify(dir string) error {
	for k, sf := range m.Files {
		raw, err := os.ReadFile(filepath.Join(dir, sf.Name))
		if err != nil {
			return fmt.Errorf("shard %d: %w", k, err)
		}
		if int64(len(raw)) != sf.Size {
			return fmt.Errorf("shard %d (%s): %d bytes, manifest says %d: %w",
				k, sf.Name, len(raw), sf.Size, index.ErrTruncated)
		}
		if got := crc32.ChecksumIEEE(raw); got != sf.CRC32 {
			return fmt.Errorf("shard %d (%s): crc32 %08x, manifest says %08x: %w",
				k, sf.Name, got, sf.CRC32, index.ErrChecksum)
		}
	}
	return nil
}

// LoadShard opens, verifies and loads member k of the set in dir,
// checking that the snapshot's embedded shard identity matches the
// manifest slot.
func (m *Manifest) LoadShard(dir string, k int) (*index.Server, error) {
	if k < 0 || k >= m.Shards {
		return nil, fmt.Errorf("shard: id %d out of range 0..%d", k, m.Shards-1)
	}
	sf := m.Files[k]
	raw, err := os.ReadFile(filepath.Join(dir, sf.Name))
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", k, err)
	}
	if got := crc32.ChecksumIEEE(raw); got != sf.CRC32 {
		return nil, fmt.Errorf("shard %d (%s): crc32 %08x, manifest says %08x: %w",
			k, sf.Name, got, sf.CRC32, index.ErrChecksum)
	}
	srv, err := index.Read(bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", k, err)
	}
	id, of, sharded := srv.ShardInfo()
	if !sharded || id != k || of != m.Shards {
		return nil, fmt.Errorf("shard: %s claims shard %d/%d, manifest slot is %d/%d", sf.Name, id, of, k, m.Shards)
	}
	if srv.Epoch() != m.Epoch {
		return nil, fmt.Errorf("shard: %s claims epoch %d, manifest says %d — mixed shard set", sf.Name, srv.Epoch(), m.Epoch)
	}
	return srv, nil
}
