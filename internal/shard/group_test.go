package shard

import (
	"fmt"
	"testing"
)

func TestGroupRoutesConsistentlyWithFor(t *testing.T) {
	owners := make([]string, 50)
	for i := range owners {
		owners[i] = fmt.Sprintf("owner://site-%d.example.org", i)
	}
	for _, of := range []int{1, 2, 3, 7} {
		groups := Group(owners, of)
		if len(groups) != of {
			t.Fatalf("of=%d: %d groups", of, len(groups))
		}
		total := 0
		for k, group := range groups {
			total += len(group)
			for _, owner := range group {
				if For(owner, of) != k {
					t.Fatalf("of=%d: %q in group %d, For says %d", of, owner, k, For(owner, of))
				}
			}
		}
		if total != len(owners) {
			t.Fatalf("of=%d: %d owners grouped, want %d", of, total, len(owners))
		}
	}
}

func TestGroupDedupsPreservingFirstAppearance(t *testing.T) {
	owners := []string{"b", "a", "b", "c", "a", ""}
	groups := Group(owners, 1)
	want := []string{"b", "a", "c", ""}
	if fmt.Sprint(groups[0]) != fmt.Sprint(want) {
		t.Fatalf("groups[0] = %v, want %v (dedup'd, first-appearance order)", groups[0], want)
	}
}

func TestGroupKeepsPerShardOrder(t *testing.T) {
	owners := make([]string, 40)
	for i := range owners {
		owners[i] = fmt.Sprintf("o%d", i)
	}
	const of = 3
	groups := Group(owners, of)
	// Within each shard, owners must appear in input order: replaying the
	// input and filtering by For must reproduce every group exactly.
	var want [of][]string
	for _, owner := range owners {
		k := For(owner, of)
		want[k] = append(want[k], owner)
	}
	for k := range groups {
		if fmt.Sprint(groups[k]) != fmt.Sprint(want[k]) {
			t.Fatalf("shard %d: %v, want %v", k, groups[k], want[k])
		}
	}
}

func TestGroupEmptyInput(t *testing.T) {
	groups := Group(nil, 4)
	if len(groups) != 4 {
		t.Fatalf("%d groups, want 4", len(groups))
	}
	for k, group := range groups {
		if len(group) != 0 {
			t.Fatalf("shard %d unexpectedly has %v", k, group)
		}
	}
}

func TestGroupPanicsOnBadShardCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Group(_, 0) did not panic")
		}
	}()
	Group([]string{"a"}, 0)
}
