// Package shard partitions a published ε-PPI into column shards so the
// index can be served by a fleet of nodes instead of one global server.
//
// The published matrix M' is m providers × n identities. Identity columns
// are the natural partition axis: a QueryPPI(t) touches exactly one
// column, so routing by owner identity sends every lookup to exactly one
// shard, and a shard node holds n/k of the index while still answering
// its queries bit-identically to the full server. Assignment is a stable
// hash of the owner name (FNV-1a 64), so any party — the gateway, a
// shard node, an offline partitioner — computes the same owner→shard map
// with no coordination and no lookup table.
//
// A shard *set* on disk is k snapshot files plus a checksummed manifest
// (see Manifest) binding them together: shard count, dimensions, and the
// CRC-32 of every member file, so a serving node can refuse to boot on a
// mixed or corrupted set.
package shard

import (
	"errors"
	"fmt"
	"hash/fnv"

	"repro/internal/bitmat"
	"repro/internal/index"
)

// For returns the shard (0 ≤ k < of) owning the identity under the
// stable FNV-1a hash. It panics on of < 1 (wiring error, not input).
func For(owner string, of int) int {
	if of < 1 {
		panic(fmt.Sprintf("shard: bad shard count %d", of))
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(owner))
	return int(h.Sum64() % uint64(of))
}

// Group buckets owners by owning shard for a batched lookup:
// Group(owners, of)[k] lists the owners routed to shard k, in first-
// appearance order with duplicates removed — one sub-batch request per
// shard resolves every distinct owner exactly once, and the caller maps
// answers back to the original (possibly repeating) positions. It panics
// on of < 1, like For.
func Group(owners []string, of int) [][]string {
	if of < 1 {
		panic(fmt.Sprintf("shard: bad shard count %d", of))
	}
	groups := make([][]string, of)
	seen := make(map[string]struct{}, len(owners))
	for _, owner := range owners {
		if _, dup := seen[owner]; dup {
			continue
		}
		seen[owner] = struct{}{}
		k := For(owner, of)
		groups[k] = append(groups[k], owner)
	}
	return groups
}

// Partition splits a published index into `of` column shards. Shard k
// receives the columns of every identity with For(name, of) == k, in the
// original column order; provider rows are complete in every shard, so
// shard-local QueryPPI answers are bit-identical to the full index.
// Shards with no identities are valid (small n, unlucky hash) — they
// serve an empty index.
func Partition(published *bitmat.Matrix, names []string, of int) ([]*index.Server, error) {
	if published == nil {
		return nil, errors.New("shard: nil matrix")
	}
	if of < 1 {
		return nil, fmt.Errorf("shard: bad shard count %d", of)
	}
	if len(names) != published.Cols() {
		return nil, fmt.Errorf("shard: %d names for %d columns", len(names), published.Cols())
	}
	cols := make([][]int, of) // shard → original column indices
	for j, name := range names {
		k := For(name, of)
		cols[k] = append(cols[k], j)
	}
	out := make([]*index.Server, of)
	for k := range out {
		mat, err := bitmat.New(published.Rows(), len(cols[k]))
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", k, err)
		}
		shardNames := make([]string, len(cols[k]))
		for local, j := range cols[k] {
			shardNames[local] = names[j]
			for _, row := range published.ColOnes(j) {
				mat.Set(row, local, true)
			}
		}
		srv, err := index.NewServer(mat, shardNames)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", k, err)
		}
		if err := srv.SetShard(k, of); err != nil {
			return nil, err
		}
		out[k] = srv
	}
	return out, nil
}

// PartitionServer is Partition over an existing full server (e.g. one
// loaded from an unsharded snapshot file).
func PartitionServer(full *index.Server, of int) ([]*index.Server, error) {
	if full == nil {
		return nil, errors.New("shard: nil server")
	}
	if _, _, sharded := full.ShardInfo(); sharded {
		return nil, errors.New("shard: refusing to re-partition an already-sharded index")
	}
	parts, err := Partition(full.PublishedMatrix(), full.Names(), of)
	if err != nil {
		return nil, err
	}
	for _, p := range parts {
		p.SetEpoch(full.Epoch())
	}
	return parts, nil
}
