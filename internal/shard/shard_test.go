package shard

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/bitmat"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/mathx"
	"repro/internal/workload"
)

// buildIndex constructs a real published index for partition tests.
func buildIndex(t *testing.T, providers, owners int) (*bitmat.Matrix, []string) {
	t.Helper()
	d, err := workload.GenerateZipf(workload.ZipfConfig{
		Providers: providers, Owners: owners, Exponent: 1.1, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Construct(d.Matrix, d.Eps, core.Config{
		Policy: mathx.PolicyChernoff, Gamma: 0.9, Mode: core.ModeTrusted, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Published, d.Names
}

func TestForStableAndInRange(t *testing.T) {
	for of := 1; of <= 7; of++ {
		for i := 0; i < 100; i++ {
			name := fmt.Sprintf("owner://site-%d.example.org", i)
			k := For(name, of)
			if k < 0 || k >= of {
				t.Fatalf("For(%q, %d) = %d out of range", name, of, k)
			}
			if again := For(name, of); again != k {
				t.Fatalf("For not stable: %d then %d", k, again)
			}
		}
	}
}

func TestPartitionCoversEveryOwnerExactlyOnce(t *testing.T) {
	published, names := buildIndex(t, 30, 40)
	full, err := index.NewServer(published, names)
	if err != nil {
		t.Fatal(err)
	}
	const of = 3
	shards, err := Partition(published, names, of)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	totalOwners := 0
	for k, srv := range shards {
		id, n, sharded := srv.ShardInfo()
		if !sharded || id != k || n != of {
			t.Fatalf("shard %d reports identity (%d, %d, %v)", k, id, n, sharded)
		}
		if srv.Providers() != full.Providers() {
			t.Fatalf("shard %d has %d provider rows, want %d", k, srv.Providers(), full.Providers())
		}
		totalOwners += srv.Owners()
		for _, name := range srv.Names() {
			seen[name]++
			if For(name, of) != k {
				t.Fatalf("owner %q landed on shard %d, For says %d", name, k, For(name, of))
			}
		}
	}
	if totalOwners != len(names) {
		t.Fatalf("shards hold %d owners, index has %d", totalOwners, len(names))
	}
	for _, name := range names {
		if seen[name] != 1 {
			t.Fatalf("owner %q appears in %d shards", name, seen[name])
		}
	}
}

func TestPartitionAnswersIdenticalToFullIndex(t *testing.T) {
	published, names := buildIndex(t, 30, 40)
	full, err := index.NewServer(published, names)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := Partition(published, names, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		want, err := full.Query(name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := shards[For(name, 4)].Query(name)
		if err != nil {
			t.Fatalf("shard query %q: %v", name, err)
		}
		if !equalInts(got, want) {
			t.Fatalf("Query(%q): shard %v, full %v", name, got, want)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	sort.Ints(a)
	sort.Ints(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPartitionValidation(t *testing.T) {
	m := bitmat.MustNew(2, 2)
	if _, err := Partition(nil, nil, 2); err == nil {
		t.Error("nil matrix accepted")
	}
	if _, err := Partition(m, []string{"a", "b"}, 0); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := Partition(m, []string{"a"}, 2); err == nil {
		t.Error("name/column mismatch accepted")
	}
}

func TestPartitionServerRejectsSharded(t *testing.T) {
	published, names := buildIndex(t, 10, 12)
	shards, err := Partition(published, names, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PartitionServer(shards[0], 2); err == nil {
		t.Error("re-partitioning a shard accepted")
	}
}

func TestWriteSetRoundTrip(t *testing.T) {
	published, names := buildIndex(t, 20, 25)
	dir := t.TempDir()
	const of = 3
	man, err := WriteSet(dir, published, names, of)
	if err != nil {
		t.Fatal(err)
	}
	if man.Shards != of || man.Providers != 20 || man.Owners != 25 {
		t.Fatalf("manifest = %+v", man)
	}

	back, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Verify(dir); err != nil {
		t.Fatalf("fresh set fails verify: %v", err)
	}
	owners := 0
	for k := 0; k < of; k++ {
		srv, err := back.LoadShard(dir, k)
		if err != nil {
			t.Fatalf("load shard %d: %v", k, err)
		}
		owners += srv.Owners()
		if srv.Owners() != back.Files[k].Owners {
			t.Fatalf("shard %d owners %d, manifest says %d", k, srv.Owners(), back.Files[k].Owners)
		}
	}
	if owners != 25 {
		t.Fatalf("loaded shards hold %d owners, want 25", owners)
	}
}

func TestManifestDetectsCorruptedShard(t *testing.T) {
	published, names := buildIndex(t, 10, 12)
	dir := t.TempDir()
	man, err := WriteSet(dir, published, names, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, man.Files[1].Name)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := man.Verify(dir); !errors.Is(err, index.ErrChecksum) {
		t.Fatalf("Verify on corrupted shard = %v, want ErrChecksum", err)
	}
	if _, err := man.LoadShard(dir, 1); !errors.Is(err, index.ErrChecksum) {
		t.Fatalf("LoadShard on corrupted shard = %v, want ErrChecksum", err)
	}
	// The untouched shard still loads.
	if _, err := man.LoadShard(dir, 0); err != nil {
		t.Fatalf("intact shard rejected: %v", err)
	}
}

func TestManifestDetectsTruncatedShard(t *testing.T) {
	published, names := buildIndex(t, 10, 12)
	dir := t.TempDir()
	man, err := WriteSet(dir, published, names, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, man.Files[0].Name)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := man.Verify(dir); !errors.Is(err, index.ErrTruncated) {
		t.Fatalf("Verify on truncated shard = %v, want ErrTruncated", err)
	}
}

func TestWriteSetAtStampsEpoch(t *testing.T) {
	published, names := buildIndex(t, 10, 12)
	dir := t.TempDir()
	man, err := WriteSetAt(dir, published, names, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if man.Epoch != 5 {
		t.Fatalf("manifest epoch = %d, want 5", man.Epoch)
	}
	back, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Epoch != 5 {
		t.Fatalf("reloaded manifest epoch = %d, want 5", back.Epoch)
	}
	for k := 0; k < 2; k++ {
		srv, err := back.LoadShard(dir, k)
		if err != nil {
			t.Fatalf("load shard %d: %v", k, err)
		}
		if srv.Epoch() != 5 {
			t.Fatalf("shard %d epoch = %d, want 5", k, srv.Epoch())
		}
	}
}

func TestLoadShardRejectsEpochMismatch(t *testing.T) {
	// A manifest claiming one epoch over snapshots stamped with another is
	// a mixed shard set — two index versions served as one. LoadShard must
	// refuse it even though every checksum matches.
	published, names := buildIndex(t, 10, 12)
	dir := t.TempDir()
	man, err := WriteSetAt(dir, published, names, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	man.Epoch = 4
	if err := man.write(dir); err != nil {
		t.Fatal(err)
	}
	back, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Verify(dir); err != nil {
		t.Fatalf("checksums should still verify: %v", err)
	}
	if _, err := back.LoadShard(dir, 0); err == nil {
		t.Fatal("epoch-disagreeing shard set loaded")
	}
}

func TestPreEpochShardSetLoads(t *testing.T) {
	// Shard sets written before the epoch field are version-1 frames with
	// no epoch in manifest or snapshots. The frame checksum covers only the
	// payload and gob omits zero fields, so rewriting a fresh epoch-0 set's
	// version bytes to 1 reproduces a genuine legacy set byte for byte. It
	// must load whole, everything reporting epoch 0.
	published, names := buildIndex(t, 10, 12)
	dir := t.TempDir()
	man, err := WriteSet(dir, published, names, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Patch each member snapshot to a v1 frame and refresh the manifest's
	// whole-file CRCs, exactly as a v1 writer would have recorded them.
	for k, sf := range man.Files {
		path := filepath.Join(dir, sf.Name)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[4], raw[5] = 0, 1 // frame version → 1
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		man.Files[k].CRC32 = crc32.ChecksumIEEE(raw)
	}
	if err := man.write(dir); err != nil {
		t.Fatal(err)
	}
	manPath := filepath.Join(dir, ManifestName)
	raw, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[4], raw[5] = 0, 1
	if err := os.WriteFile(manPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	back, err := ReadManifest(dir)
	if err != nil {
		t.Fatalf("legacy manifest rejected: %v", err)
	}
	if back.Epoch != 0 {
		t.Fatalf("legacy manifest epoch = %d, want 0", back.Epoch)
	}
	if err := back.Verify(dir); err != nil {
		t.Fatalf("legacy set fails verify: %v", err)
	}
	for k := 0; k < 2; k++ {
		srv, err := back.LoadShard(dir, k)
		if err != nil {
			t.Fatalf("legacy shard %d rejected: %v", k, err)
		}
		if srv.Epoch() != 0 {
			t.Fatalf("legacy shard %d epoch = %d, want 0", k, srv.Epoch())
		}
	}
}

func TestReadManifestRejectsCorruption(t *testing.T) {
	published, names := buildIndex(t, 10, 12)
	dir := t.TempDir()
	if _, err := WriteSet(dir, published, names, 2); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, ManifestName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x80
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(dir); !errors.Is(err, index.ErrChecksum) {
		t.Fatalf("corrupted manifest = %v, want ErrChecksum", err)
	}
}
