package grouping

import (
	"math/rand"
	"testing"

	"repro/internal/bitmat"
)

func randomMatrix(rng *rand.Rand, m, n int, density float64) *bitmat.Matrix {
	mat := bitmat.MustNew(m, n)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			if rng.Float64() < density {
				mat.Set(i, j, true)
			}
		}
	}
	return mat
}

func TestVariantString(t *testing.T) {
	if VariantBawa.String() != "grouping-ppi" || VariantSSPPI.String() != "ss-ppi" {
		t.Error("variant names wrong")
	}
	if Variant(9).String() != "variant(9)" {
		t.Error("unknown variant name wrong")
	}
}

func TestConstructValidation(t *testing.T) {
	truth := bitmat.MustNew(10, 2)
	if _, err := Construct(truth, Config{Groups: 0, Variant: VariantBawa}); err == nil {
		t.Error("0 groups accepted")
	}
	if _, err := Construct(truth, Config{Groups: 11, Variant: VariantBawa}); err == nil {
		t.Error("groups > providers accepted")
	}
	if _, err := Construct(truth, Config{Groups: 2, Variant: Variant(9)}); err == nil {
		t.Error("unknown variant accepted")
	}
}

func TestGroupAssignmentBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	truth := randomMatrix(rng, 100, 5, 0.1)
	res, err := Construct(truth, Config{Groups: 7, Variant: VariantBawa, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Members) != 7 {
		t.Fatalf("groups = %d", len(res.Members))
	}
	seen := make(map[int]bool)
	for g, mem := range res.Members {
		if len(mem) < 100/7 || len(mem) > 100/7+1 {
			t.Fatalf("group %d size %d not balanced", g, len(mem))
		}
		for _, p := range mem {
			if seen[p] {
				t.Fatalf("provider %d in two groups", p)
			}
			seen[p] = true
			if res.GroupOf[p] != g {
				t.Fatalf("GroupOf inconsistent for %d", p)
			}
		}
	}
	if len(seen) != 100 {
		t.Fatalf("assigned %d of 100 providers", len(seen))
	}
}

func TestGroupLevelPublication(t *testing.T) {
	// 4 providers, 2 groups. Identity at provider 0 only.
	truth := bitmat.MustNew(4, 1)
	truth.Set(0, 0, true)
	res, err := Construct(truth, Config{Groups: 2, Variant: VariantBawa, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	g := res.GroupOf[0]
	for _, p := range res.Members[g] {
		if !res.Published.Get(p, 0) {
			t.Fatalf("group member %d not published", p)
		}
	}
	other := 1 - g
	for _, p := range res.Members[other] {
		if res.Published.Get(p, 0) {
			t.Fatalf("non-member %d published", p)
		}
	}
	// Recall: published covers truth.
	if !res.Published.Covers(truth) {
		t.Fatal("grouping lost recall")
	}
}

func TestMembersIndistinguishable(t *testing.T) {
	// Within a group, the published bits are identical for all members in
	// every column — the k-anonymity property.
	rng := rand.New(rand.NewSource(4))
	truth := randomMatrix(rng, 60, 20, 0.15)
	res, err := Construct(truth, Config{Groups: 6, Variant: VariantBawa, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, mem := range res.Members {
		for j := 0; j < 20; j++ {
			first := res.Published.Get(mem[0], j)
			for _, p := range mem[1:] {
				if res.Published.Get(p, j) != first {
					t.Fatalf("group members differ at column %d", j)
				}
			}
		}
	}
}

func TestSSPPILeaksFrequencies(t *testing.T) {
	truth := bitmat.MustNew(10, 3)
	truth.Set(0, 0, true)
	truth.Set(1, 0, true)
	truth.Set(5, 2, true)
	bawa, err := Construct(truth, Config{Groups: 2, Variant: VariantBawa, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if bawa.LeakedFrequencies != nil {
		t.Fatal("Bawa variant leaked frequencies")
	}
	ss, err := Construct(truth, Config{Groups: 2, Variant: VariantSSPPI, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{2, 0, 1}
	for j, f := range ss.LeakedFrequencies {
		if f != want[j] {
			t.Fatalf("leaked[%d] = %d, want %d", j, f, want[j])
		}
	}
}

func TestGroupsReporting(t *testing.T) {
	// Common identity (everywhere) reports in all groups; rare identity in
	// exactly one group.
	truth := bitmat.MustNew(20, 2)
	for i := 0; i < 20; i++ {
		truth.Set(i, 0, true)
	}
	truth.Set(7, 1, true)
	res, err := Construct(truth, Config{Groups: 5, Variant: VariantBawa, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.GroupsReporting(0); got != 5 {
		t.Fatalf("common identity reports in %d groups, want 5", got)
	}
	if got := res.GroupsReporting(1); got != 1 {
		t.Fatalf("rare identity reports in %d groups, want 1", got)
	}
}

func TestSingleGroupBroadcast(t *testing.T) {
	truth := bitmat.MustNew(5, 1)
	truth.Set(2, 0, true)
	res, err := Construct(truth, Config{Groups: 1, Variant: VariantBawa, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Published.ColCount(0) != 5 {
		t.Fatal("single group should broadcast to all providers")
	}
}

func TestDeterministicBySeed(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	truth := randomMatrix(rng, 30, 10, 0.2)
	a, err := Construct(truth, Config{Groups: 3, Variant: VariantBawa, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Construct(truth, Config{Groups: 3, Variant: VariantBawa, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Published.Equal(b.Published) {
		t.Fatal("same seed, different grouping")
	}
}
