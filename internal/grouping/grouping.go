// Package grouping implements the k-anonymity-style baseline PPIs that the
// paper compares against (Section V-A1 and Appendix B): the grouping PPI of
// Bawa et al. [12], [13] and the collusion-resistant SS-PPI variant [22].
//
// Providers are randomly assigned to disjoint privacy groups. A group
// reports 1 for an identity if at least one member truly holds it; a
// searcher then contacts every member of every reporting group, which makes
// members of a group mutually indistinguishable. The achieved false-positive
// rate is whatever the random assignment happens to produce — the
// "privacy-quality-agnostic" construction that ε-PPI fixes.
package grouping

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/bitmat"
)

// Variant distinguishes the two grouping baselines.
type Variant int

// Baseline variants.
const (
	// VariantBawa is the original grouping PPI [12], [13]: providers
	// disclose local indexes to form groups; frequencies are not published
	// but remain statistically inferable (NoGuarantee).
	VariantBawa Variant = iota + 1
	// VariantSSPPI is SS-PPI [22]: collusion-resistant construction that,
	// per the paper's analysis, leaks exact identity frequencies to
	// providers during construction (NoProtect under the common-identity
	// attack).
	VariantSSPPI
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case VariantBawa:
		return "grouping-ppi"
	case VariantSSPPI:
		return "ss-ppi"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// Config parameterises a grouping construction.
type Config struct {
	// Groups is the number of disjoint privacy groups.
	Groups int
	// Variant selects the baseline flavour.
	Variant Variant
	// Seed drives the random group assignment.
	Seed int64
}

// ErrBadGroups reports an unusable group count.
var ErrBadGroups = errors.New("grouping: group count must be in [1, providers]")

// Result is a constructed grouping PPI.
type Result struct {
	// Published is the provider-level expansion of the group-level index:
	// M'(i,j) = 1 iff provider i's group reports identity j.
	Published *bitmat.Matrix
	// GroupOf maps provider → group.
	GroupOf []int
	// Members lists providers per group.
	Members [][]int
	// LeakedFrequencies carries the exact per-identity frequencies when the
	// variant leaks them during construction (SS-PPI); nil otherwise. This
	// is the side channel the common-identity attack consumes.
	LeakedFrequencies []uint64
}

// Construct builds the baseline index over the private matrix.
func Construct(truth *bitmat.Matrix, cfg Config) (*Result, error) {
	m, n := truth.Rows(), truth.Cols()
	if cfg.Groups < 1 || cfg.Groups > m {
		return nil, fmt.Errorf("%w: %d groups for %d providers", ErrBadGroups, cfg.Groups, m)
	}
	if cfg.Variant != VariantBawa && cfg.Variant != VariantSSPPI {
		return nil, fmt.Errorf("grouping: unknown variant %v", cfg.Variant)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Random balanced assignment: shuffle providers, deal round-robin.
	perm := rng.Perm(m)
	groupOf := make([]int, m)
	members := make([][]int, cfg.Groups)
	for pos, prov := range perm {
		g := pos % cfg.Groups
		groupOf[prov] = g
		members[g] = append(members[g], prov)
	}

	published, err := bitmat.New(m, n)
	if err != nil {
		return nil, err
	}
	for j := 0; j < n; j++ {
		for g := 0; g < cfg.Groups; g++ {
			has := false
			for _, prov := range members[g] {
				if truth.Get(prov, j) {
					has = true
					break
				}
			}
			if !has {
				continue
			}
			for _, prov := range members[g] {
				published.Set(prov, j, true)
			}
		}
	}

	res := &Result{Published: published, GroupOf: groupOf, Members: members}
	if cfg.Variant == VariantSSPPI {
		leaked := make([]uint64, n)
		for j := 0; j < n; j++ {
			leaked[j] = uint64(truth.ColCount(j))
		}
		res.LeakedFrequencies = leaked
	}
	return res, nil
}

// GroupsReporting returns, for identity column j, the number of groups
// whose bit is set — the signal the common-identity attack reads from a
// grouping PPI (a term reported by every group is almost surely common).
func (r *Result) GroupsReporting(j int) int {
	count := 0
	for _, mem := range r.Members {
		if len(mem) > 0 && r.Published.Get(mem[0], j) {
			count++
		}
	}
	return count
}
