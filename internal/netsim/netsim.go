// Package netsim models the execution time of the distributed ε-PPI
// protocols on a cluster, standing in for the paper's Emulab testbed.
//
// The model is the standard alpha-beta (latency-bandwidth) cost model used
// in collective-communication analysis, extended with a per-gate compute
// term for circuit-based MPC:
//
//	T = rounds·α + maxBytesPerParty/β + gates·g
//
// where α is the one-way message latency, β the per-party bandwidth and g
// the secure evaluation cost of one gate. The experiments use it in two
// ways: to extrapolate Fig. 6 execution times beyond the party counts that
// fit on one machine, and to sanity-check that the measured in-process runs
// have the same shape as the modelled cluster runs.
package netsim

import (
	"errors"
	"fmt"
	"time"
)

// Config parameterises the cluster model.
type Config struct {
	// LatencyNs is the one-way message latency α in nanoseconds.
	LatencyNs float64
	// BytesPerSecond is the per-party bandwidth β.
	BytesPerSecond float64
	// GateNs is the secure per-gate evaluation cost g in nanoseconds
	// (covers share arithmetic plus amortised triple handling).
	GateNs float64
}

// Emulab returns parameters resembling the paper's testbed: a LAN of
// quad-core Xeons (sub-millisecond RTT, gigabit links) running a
// boolean-circuit MPC runtime whose per-gate cost dominates.
func Emulab() Config {
	return Config{
		LatencyNs:      200_000,     // 0.2 ms one-way LAN latency
		BytesPerSecond: 125_000_000, // 1 Gbit/s
		GateNs:         40_000,      // ~25k secure gates/s/party, FairplayMP-era
	}
}

// WAN returns parameters for geographically distributed coordinators
// (cross-region links): high latency makes protocol round count — i.e.
// circuit AND-depth — the dominant cost, which is the regime where the
// parallel-prefix circuits pay off.
func WAN() Config {
	return Config{
		LatencyNs:      25_000_000, // 25 ms one-way cross-region
		BytesPerSecond: 12_500_000, // 100 Mbit/s
		GateNs:         40_000,
	}
}

// ErrBadConfig reports non-positive model parameters.
var ErrBadConfig = errors.New("netsim: config values must be positive")

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.LatencyNs <= 0 || c.BytesPerSecond <= 0 || c.GateNs < 0 {
		return fmt.Errorf("%w: %+v", ErrBadConfig, c)
	}
	return nil
}

// Workload describes one protocol execution from a single party's
// perspective (the slowest party bounds the start-to-end time).
type Workload struct {
	// Rounds is the number of sequential communication rounds.
	Rounds int
	// MaxBytesPerParty is the largest number of bytes any single party
	// sends or receives.
	MaxBytesPerParty int
	// Gates is the number of secure gate evaluations on the critical path.
	Gates int
}

// Estimate returns the modelled start-to-end execution time.
func (c Config) Estimate(w Workload) (time.Duration, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if w.Rounds < 0 || w.MaxBytesPerParty < 0 || w.Gates < 0 {
		return 0, fmt.Errorf("netsim: negative workload %+v", w)
	}
	ns := float64(w.Rounds)*c.LatencyNs +
		float64(w.MaxBytesPerParty)/c.BytesPerSecond*1e9 +
		float64(w.Gates)*c.GateNs
	return time.Duration(ns), nil
}
