package netsim

import (
	"testing"
	"time"
)

func TestValidate(t *testing.T) {
	if err := Emulab().Validate(); err != nil {
		t.Fatalf("Emulab invalid: %v", err)
	}
	if err := WAN().Validate(); err != nil {
		t.Fatalf("WAN invalid: %v", err)
	}
	if WAN().LatencyNs <= Emulab().LatencyNs {
		t.Fatal("WAN latency should exceed LAN latency")
	}
	bad := []Config{
		{LatencyNs: 0, BytesPerSecond: 1, GateNs: 1},
		{LatencyNs: 1, BytesPerSecond: 0, GateNs: 1},
		{LatencyNs: 1, BytesPerSecond: 1, GateNs: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestEstimateComponents(t *testing.T) {
	c := Config{LatencyNs: 1000, BytesPerSecond: 1e9, GateNs: 10}
	// Pure latency.
	d, err := c.Estimate(Workload{Rounds: 5})
	if err != nil || d != 5*time.Microsecond {
		t.Fatalf("latency term: %v err=%v", d, err)
	}
	// Pure bandwidth: 1e9 B at 1e9 B/s = 1 s.
	d, err = c.Estimate(Workload{MaxBytesPerParty: 1e9})
	if err != nil || d != time.Second {
		t.Fatalf("bandwidth term: %v err=%v", d, err)
	}
	// Pure compute.
	d, err = c.Estimate(Workload{Gates: 100})
	if err != nil || d != time.Microsecond {
		t.Fatalf("gate term: %v err=%v", d, err)
	}
}

func TestEstimateRejectsNegative(t *testing.T) {
	c := Emulab()
	if _, err := c.Estimate(Workload{Rounds: -1}); err == nil {
		t.Error("negative rounds accepted")
	}
	if _, err := c.Estimate(Workload{Gates: -1}); err == nil {
		t.Error("negative gates accepted")
	}
	if _, err := (Config{}).Estimate(Workload{}); err == nil {
		t.Error("invalid config accepted in Estimate")
	}
}

func TestEstimateMonotone(t *testing.T) {
	c := Emulab()
	base, err := c.Estimate(Workload{Rounds: 10, MaxBytesPerParty: 1000, Gates: 100})
	if err != nil {
		t.Fatal(err)
	}
	bigger, err := c.Estimate(Workload{Rounds: 20, MaxBytesPerParty: 2000, Gates: 200})
	if err != nil {
		t.Fatal(err)
	}
	if bigger <= base {
		t.Fatalf("estimate not monotone: %v vs %v", base, bigger)
	}
}
