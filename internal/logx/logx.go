// Package logx configures structured logging (log/slog) for the ε-PPI
// binaries. Every logger it builds carries trace correlation: records
// logged with a context holding an active trace span (internal/trace)
// gain trace_id and span_id attributes, so log lines join up with the
// span trees served at /v1/traces.
package logx

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"

	"repro/internal/trace"
)

// New builds a logger writing to w. level is one of debug, info, warn,
// error (case-insensitive); format is text or json. The returned logger's
// handler is wrapped so context-carried trace spans annotate every record.
func New(w io.Writer, level, format string) (*slog.Logger, error) {
	lvl, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("logx: unknown log format %q (want text or json)", format)
	}
	return slog.New(WithTrace(h)), nil
}

// ParseLevel maps a level name to its slog.Level.
func ParseLevel(level string) (slog.Level, error) {
	switch strings.ToLower(level) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("logx: unknown log level %q (want debug, info, warn or error)", level)
}

// WithTrace wraps h so that records logged under a context carrying an
// active span gain trace_id and span_id attributes. Records logged with
// a spanless context pass through untouched.
func WithTrace(h slog.Handler) slog.Handler {
	return traceHandler{inner: h}
}

type traceHandler struct {
	inner slog.Handler
}

func (t traceHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return t.inner.Enabled(ctx, level)
}

func (t traceHandler) Handle(ctx context.Context, r slog.Record) error {
	if sp := trace.FromContext(ctx); sp != nil {
		r.AddAttrs(
			slog.String("trace_id", sp.TraceID().String()),
			slog.String("span_id", sp.ID().String()),
		)
	}
	return t.inner.Handle(ctx, r)
}

func (t traceHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return traceHandler{inner: t.inner.WithAttrs(attrs)}
}

func (t traceHandler) WithGroup(name string) slog.Handler {
	return traceHandler{inner: t.inner.WithGroup(name)}
}
