package logx

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(&bytes.Buffer{}, "loud", "text"); err == nil {
		t.Error("unknown level accepted")
	}
	if _, err := New(&bytes.Buffer{}, "info", "xml"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestLevelFilters(t *testing.T) {
	var buf bytes.Buffer
	lg, err := New(&buf, "warn", "text")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("too quiet")
	lg.Warn("loud enough")
	out := buf.String()
	if strings.Contains(out, "too quiet") {
		t.Error("info record passed a warn-level logger")
	}
	if !strings.Contains(out, "loud enough") {
		t.Error("warn record filtered out")
	}
}

func TestTraceCorrelation(t *testing.T) {
	var buf bytes.Buffer
	lg, err := New(&buf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(2)
	ctx, sp := tr.StartRoot(context.Background(), "op")
	lg.InfoContext(ctx, "inside span")
	lg.InfoContext(context.Background(), "outside span")
	sp.End()

	dec := json.NewDecoder(&buf)
	var inside, outside map[string]any
	if err := dec.Decode(&inside); err != nil {
		t.Fatal(err)
	}
	if err := dec.Decode(&outside); err != nil {
		t.Fatal(err)
	}
	if inside["trace_id"] != sp.TraceID().String() {
		t.Errorf("trace_id = %v, want %v", inside["trace_id"], sp.TraceID().String())
	}
	if inside["span_id"] != sp.ID().String() {
		t.Errorf("span_id = %v, want %v", inside["span_id"], sp.ID().String())
	}
	if _, has := outside["trace_id"]; has {
		t.Error("spanless record gained a trace_id")
	}
}

func TestWithAttrsPreservesTraceWrapping(t *testing.T) {
	var buf bytes.Buffer
	lg, err := New(&buf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(2)
	ctx, sp := tr.StartRoot(context.Background(), "op")
	defer sp.End()
	lg.With(slog.String("component", "test")).InfoContext(ctx, "derived logger")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["component"] != "test" {
		t.Error("WithAttrs attribute lost")
	}
	if rec["trace_id"] != sp.TraceID().String() {
		t.Error("derived logger lost trace correlation")
	}
}
