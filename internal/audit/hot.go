package audit

import (
	"log/slog"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
)

// HotTracker flags owners queried anomalously often — the live form of
// the paper's common-identity attack is an attacker probing the index
// owner by owner to estimate frequencies, and a single scraped victim
// shows up the same way. It keeps an exact per-owner counter with
// periodic halving decay: every window the counts halve, so sustained
// pressure stays hot while a one-off burst ages out in a few windows.
// Memory is bounded: at most maxOwners distinct owners are tracked,
// and owners whose count decays to zero are pruned.
//
// A nil *HotTracker is the disabled state; Observe on it no-ops.
type HotTracker struct {
	mu          sync.Mutex
	window      time.Duration
	threshold   uint32
	maxOwners   int
	counts      map[string]uint32
	hot         int
	windowStart time.Time

	gauge   *metrics.Gauge   // eppi_audit_hot_owners
	flagged *metrics.Counter // eppi_audit_hot_flagged_total
	logger  *slog.Logger
}

// defaultMaxOwners bounds tracked owners. An attacker spraying unique
// owner names cannot balloon the tracker — and spraying uniques is the
// opposite of the repeated-probe pattern this watches for.
const defaultMaxOwners = 65536

// NewHotTracker returns a tracker flagging owners that accumulate
// threshold observations within a decay window. threshold < 1 or
// window <= 0 disables tracking (returns nil).
func NewHotTracker(window time.Duration, threshold int, reg *metrics.Registry, logger *slog.Logger) *HotTracker {
	if threshold < 1 || window <= 0 {
		return nil
	}
	h := &HotTracker{
		window:    window,
		threshold: uint32(threshold),
		maxOwners: defaultMaxOwners,
		counts:    make(map[string]uint32),
		logger:    logger,
	}
	if reg != nil {
		h.gauge = reg.Gauge("eppi_audit_hot_owners", "Owners currently above the hot-query threshold.")
		h.flagged = reg.Counter("eppi_audit_hot_flagged_total", "Hot-owner threshold crossings (scanning suspects flagged).")
	}
	return h
}

// Observe counts one query of owner and reports whether the owner is
// currently hot (at or above threshold).
func (h *HotTracker) Observe(owner string) bool {
	if h == nil {
		return false
	}
	return h.observeAt(owner, time.Now())
}

func (h *HotTracker) observeAt(owner string, now time.Time) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.windowStart.IsZero() {
		h.windowStart = now
	}
	for now.Sub(h.windowStart) >= h.window {
		h.decayLocked()
		h.windowStart = h.windowStart.Add(h.window)
		if len(h.counts) == 0 {
			// Nothing left to decay; jump the window to now instead of
			// replaying an idle gap one period at a time.
			h.windowStart = now
			break
		}
	}
	c, tracked := h.counts[owner]
	if !tracked && len(h.counts) >= h.maxOwners {
		// Full: refuse new owners rather than evicting live counts.
		return false
	}
	c++
	h.counts[owner] = c
	if c == h.threshold {
		h.hot++
		h.gauge.Set(float64(h.hot))
		h.flagged.Inc()
		if h.logger != nil {
			h.logger.Warn("audit: hot owner — possible scan",
				slog.String("owner", owner),
				slog.Uint64("count", uint64(c)),
				slog.Duration("window", h.window))
		}
	}
	return c >= h.threshold
}

// decayLocked halves every count, pruning zeros and demoting owners
// that fall below threshold.
func (h *HotTracker) decayLocked() {
	for owner, c := range h.counts {
		half := c / 2
		if half == 0 {
			delete(h.counts, owner)
		} else {
			h.counts[owner] = half
		}
		if c >= h.threshold && half < h.threshold {
			h.hot--
		}
	}
	h.gauge.Set(float64(h.hot))
}

// HotOwners returns the currently-hot owners, sorted.
func (h *HotTracker) HotOwners() []string {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []string
	for owner, c := range h.counts {
		if c >= h.threshold {
			out = append(out, owner)
		}
	}
	sort.Strings(out)
	return out
}
