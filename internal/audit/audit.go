// Package audit records who asked the locator about whom. ε-PPI's
// published matrix bounds what a *single* answer reveals; an attacker
// who scans — the common-identity attack of the paper mounted live,
// one owner at a time — is only visible in the query stream. The audit
// log is that stream, durable: one checksummed JSON line per query,
// written asynchronously so the hot path never blocks on disk, bounded
// so a slow disk sheds records (counted) instead of memory.
//
// Frame format, one record per line:
//
//	crc32hex<SP>json<LF>
//
// where crc32hex is the 8-hex-digit IEEE CRC32 of exactly the json
// bytes. A torn tail line (crash mid-write) or a flipped bit fails the
// CRC and is skipped — and counted — by the reader; every intact line
// remains usable. Files rotate by size as audit-NNNNNN.jsonl; each
// process run starts a fresh file, so a crashed run's possibly-torn
// tail is never appended to.
//
// A nil *Sink is the disabled state: Record on it is a no-op that
// allocates nothing — the query hot path pays one nil check.
package audit

import (
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Entry is one audited query. Field tags are short on purpose: the log
// is written once per query and kept for a long time.
type Entry struct {
	// Time is the query's arrival, unix nanoseconds. Record stamps it
	// when left zero.
	Time int64 `json:"t"`
	// Route names the operation: "query", "search".
	Route string `json:"route"`
	// Owner is the queried identity (the privacy-relevant datum).
	Owner string `json:"owner,omitempty"`
	// Shard is the column shard that answered; -1 when unknown.
	Shard int `json:"shard"`
	// Epoch is the index publication that answered.
	Epoch uint64 `json:"epoch"`
	// Trace is the request's trace id, joining the audit record to
	// spans and logs.
	Trace string `json:"trace,omitempty"`
	// Results is the answer cardinality; -1 for "owner unknown".
	Results int `json:"results"`
	// Status is the HTTP status returned.
	Status int `json:"status,omitempty"`
}

// Options tunes a Sink; the zero value is serviceable.
type Options struct {
	// RingSize bounds the in-flight record buffer (default 1024).
	// When full, Record drops (counted in eppi_audit_dropped_total).
	RingSize int
	// MaxFileBytes rotates the active file when it would exceed this
	// size (default 64 MiB).
	MaxFileBytes int64
	// Registry, when non-nil, receives the sink's counters.
	Registry *metrics.Registry
	// Logger, when non-nil, reports writer-goroutine I/O errors.
	Logger *slog.Logger
}

const (
	defaultRing     = 1024
	defaultMaxBytes = 64 << 20
	filePrefix      = "audit-"
	fileSuffix      = ".jsonl"
)

// Sink is the async audit writer. All exported methods are safe for
// concurrent use and on a nil receiver.
type Sink struct {
	ch   chan Entry
	stop chan struct{}
	done chan struct{}
	once sync.Once

	dir      string
	maxBytes int64
	seq      int
	cur      *os.File
	curSize  int64
	closeErr error

	dropped   *metrics.Counter
	records   *metrics.Counter
	rotations *metrics.Counter
	logger    *slog.Logger
}

// FileName renders the rotation sequence's file name: audit-000001.jsonl.
func FileName(seq int) string {
	return fmt.Sprintf("%s%06d%s", filePrefix, seq, fileSuffix)
}

// Open creates an audit sink writing into dir (created if missing) and
// starts its writer goroutine. The sink begins a fresh file numbered
// after the highest existing one — it never appends to a previous
// run's file, whose tail may be torn.
func Open(dir string, opts Options) (*Sink, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("audit: %w", err)
	}
	ring := opts.RingSize
	if ring <= 0 {
		ring = defaultRing
	}
	maxBytes := opts.MaxFileBytes
	if maxBytes <= 0 {
		maxBytes = defaultMaxBytes
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Sink{
		ch:       make(chan Entry, ring),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		dir:      dir,
		maxBytes: maxBytes,
		seq:      maxSeq(dir),
		logger:   logger,
	}
	if reg := opts.Registry; reg != nil {
		s.dropped = reg.Counter("eppi_audit_dropped_total", "Audit records dropped because the ring was full.")
		s.records = reg.Counter("eppi_audit_records_total", "Audit records written to disk.")
		s.rotations = reg.Counter("eppi_audit_rotations_total", "Audit log file rotations.")
	}
	if err := s.rotate(); err != nil {
		return nil, err
	}
	go s.run()
	return s, nil
}

// maxSeq returns the highest rotation sequence present in dir (0 when
// none parse).
func maxSeq(dir string) int {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	max := 0
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, filePrefix) || !strings.HasSuffix(name, fileSuffix) {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, filePrefix), fileSuffix))
		if err == nil && n > max {
			max = n
		}
	}
	return max
}

// Record enqueues one entry, stamping its time when unset. It never
// blocks: a full ring drops the record and counts the drop. On a nil
// sink (auditing disabled) it is a no-op and allocates nothing.
func (s *Sink) Record(e Entry) {
	if s == nil {
		return
	}
	if e.Time == 0 {
		e.Time = time.Now().UnixNano()
	}
	select {
	case s.ch <- e:
	default:
		s.dropped.Inc()
	}
}

// Close drains buffered records to disk and closes the active file.
// Safe to call more than once. Record calls racing Close may or may
// not land; callers should stop serving first.
func (s *Sink) Close() error {
	if s == nil {
		return nil
	}
	s.once.Do(func() { close(s.stop) })
	<-s.done
	return s.closeErr
}

// Dir returns the directory the sink writes into.
func (s *Sink) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

func (s *Sink) run() {
	defer close(s.done)
	for {
		select {
		case e := <-s.ch:
			s.write(e)
		case <-s.stop:
			for {
				select {
				case e := <-s.ch:
					s.write(e)
				default:
					if s.cur != nil {
						if err := s.cur.Sync(); err != nil && s.closeErr == nil {
							s.closeErr = err
						}
						if err := s.cur.Close(); err != nil && s.closeErr == nil {
							s.closeErr = err
						}
					}
					return
				}
			}
		}
	}
}

// write frames and appends one record, rotating first when the active
// file would overflow. Runs only on the writer goroutine.
func (s *Sink) write(e Entry) {
	raw, err := marshalEntry(e)
	if err != nil {
		s.logger.Warn("audit: marshal failed", slog.Any("error", err))
		return
	}
	line := frame(raw)
	if s.cur == nil || s.curSize+int64(len(line)) > s.maxBytes {
		if err := s.rotate(); err != nil {
			s.logger.Warn("audit: rotation failed", slog.Any("error", err))
			s.dropped.Inc()
			return
		}
	}
	n, err := s.cur.Write(line)
	s.curSize += int64(n)
	if err != nil {
		s.logger.Warn("audit: write failed", slog.Any("error", err))
		return
	}
	s.records.Inc()
}

// rotate closes the active file (if any) and opens the next in the
// sequence.
func (s *Sink) rotate() error {
	if s.cur != nil {
		_ = s.cur.Sync()
		_ = s.cur.Close()
		s.cur = nil
		s.rotations.Inc()
	}
	s.seq++
	f, err := os.OpenFile(filepath.Join(s.dir, FileName(s.seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("audit: %w", err)
	}
	s.cur = f
	s.curSize = 0
	return nil
}

// frame wraps marshaled entry bytes in the line format:
// crc32hex<SP>json<LF>.
func frame(raw []byte) []byte {
	line := make([]byte, 0, len(raw)+10)
	line = fmt.Appendf(line, "%08x ", crc32.ChecksumIEEE(raw))
	line = append(line, raw...)
	return append(line, '\n')
}

// Files lists dir's audit files in rotation order.
func Files(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, filePrefix+"*"+fileSuffix))
	if err != nil {
		return nil, fmt.Errorf("audit: %w", err)
	}
	sort.Strings(matches)
	return matches, nil
}
