package audit

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// marshalEntry is the one encoding both writer and reader agree on.
func marshalEntry(e Entry) ([]byte, error) {
	return json.Marshal(e)
}

// ScanStats counts what a read pass saw.
type ScanStats struct {
	// Lines is the number of intact records delivered.
	Lines int
	// Corrupt is the number of lines that failed framing, CRC, or JSON
	// decoding — torn tails, bit rot, or foreign content.
	Corrupt int
}

// Scan reads framed audit records from r, calling fn for each intact
// one. Corrupt lines are counted and skipped, never fatal: an audit
// log damaged in one place keeps every other record usable. fn
// returning an error stops the scan.
func Scan(r io.Reader, fn func(Entry) error) (ScanStats, error) {
	var st ScanStats
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		sp := bytes.IndexByte(line, ' ')
		if sp != 8 {
			st.Corrupt++
			continue
		}
		var want uint32
		if _, err := fmt.Sscanf(string(line[:8]), "%08x", &want); err != nil {
			st.Corrupt++
			continue
		}
		body := line[9:]
		if crc32.ChecksumIEEE(body) != want {
			st.Corrupt++
			continue
		}
		var e Entry
		if err := json.Unmarshal(body, &e); err != nil {
			st.Corrupt++
			continue
		}
		st.Lines++
		if err := fn(e); err != nil {
			return st, err
		}
	}
	return st, sc.Err()
}

// ScanFile scans one audit file.
func ScanFile(path string, fn func(Entry) error) (ScanStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return ScanStats{}, fmt.Errorf("audit: %w", err)
	}
	defer f.Close()
	return Scan(f, fn)
}

// ScanDir scans every audit file in dir in rotation order.
func ScanDir(dir string, fn func(Entry) error) (ScanStats, error) {
	files, err := Files(dir)
	if err != nil {
		return ScanStats{}, err
	}
	var total ScanStats
	for _, path := range files {
		st, err := ScanFile(path, fn)
		total.Lines += st.Lines
		total.Corrupt += st.Corrupt
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ReadDir loads every intact record of dir into memory — convenience
// for tests and small logs; the analyzer streams with ScanDir.
func ReadDir(dir string) ([]Entry, ScanStats, error) {
	var out []Entry
	st, err := ScanDir(dir, func(e Entry) error {
		out = append(out, e)
		return nil
	})
	return out, st, err
}
