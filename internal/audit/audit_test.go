package audit

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/bitmat"
	"repro/internal/index"
	"repro/internal/metrics"
)

func TestSinkRoundTrip(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	s, err := Open(dir, Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	want := []Entry{
		{Route: "query", Owner: "owner://a", Shard: 0, Epoch: 3, Trace: "abc", Results: 4, Status: 200},
		{Route: "query", Owner: "owner://b", Shard: 1, Epoch: 3, Results: -1, Status: 404},
		{Route: "search", Shard: -1, Epoch: 3, Results: 17, Status: 200},
	}
	for _, e := range want {
		s.Record(e)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	got, st, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Corrupt != 0 || st.Lines != len(want) {
		t.Fatalf("stats = %+v", st)
	}
	for i, e := range got {
		if e.Time == 0 {
			t.Errorf("entry %d: time not stamped", i)
		}
		e.Time = 0
		if e != want[i] {
			t.Errorf("entry %d = %+v, want %+v", i, e, want[i])
		}
	}
	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "eppi_audit_records_total 3") {
		t.Errorf("records counter missing:\n%s", sb.String())
	}
}

func TestSinkRotationBySize(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxFileBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		s.Record(Entry{Route: "query", Owner: "owner://long-enough-name.example.org", Results: i})
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	files, err := Files(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 2 {
		t.Fatalf("no rotation happened: %v", files)
	}
	got, st, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n || st.Corrupt != 0 {
		t.Fatalf("read %d entries (stats %+v), want %d", len(got), st, n)
	}
}

func TestSinkNewRunStartsFreshFile(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Record(Entry{Route: "query", Owner: "a"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2.Record(Entry{Route: "query", Owner: "b"})
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	files, err := Files(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("files = %v, want 2 (one per run)", files)
	}
	if filepath.Base(files[1]) != FileName(2) {
		t.Errorf("second run's file = %s, want %s", files[1], FileName(2))
	}
}

// TestSinkRingOverflowDrops drives Record against a sink whose writer
// goroutine never runs, so the ring genuinely fills.
func TestSinkRingOverflowDrops(t *testing.T) {
	reg := metrics.NewRegistry()
	s := &Sink{
		ch:      make(chan Entry, 2),
		dropped: reg.Counter("eppi_audit_dropped_total", ""),
	}
	for i := 0; i < 5; i++ {
		s.Record(Entry{Route: "query"})
	}
	if got := s.dropped.Value(); got != 3 {
		t.Errorf("dropped = %d, want 3", got)
	}
}

func TestScanSkipsCorruptLines(t *testing.T) {
	good, err := marshalEntry(Entry{Route: "query", Owner: "a", Results: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.Write(frame(good))
	sb.WriteString("00000000 {\"route\":\"query\"}\n") // wrong CRC
	sb.WriteString("not an audit line at all\n")
	sb.WriteString("deadbeef\n") // no separator
	sb.Write(frame(good))
	var n int
	st, err := Scan(strings.NewReader(sb.String()), func(Entry) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if st.Lines != 2 || st.Corrupt != 3 || n != 2 {
		t.Errorf("stats = %+v, delivered %d; want 2 intact / 3 corrupt", st, n)
	}
}

func TestScanTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Record(Entry{Route: "query", Owner: "a"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	files, _ := Files(dir)
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: append the first half of another line.
	torn := append(raw, raw[:len(raw)/2]...)
	if err := os.WriteFile(files[0], torn, 0o644); err != nil {
		t.Fatal(err)
	}
	_, st, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Lines != 1 || st.Corrupt != 1 {
		t.Errorf("stats = %+v, want 1 intact / 1 corrupt", st)
	}
}

func TestNilSinkIsNoOp(t *testing.T) {
	var s *Sink
	s.Record(Entry{Route: "query"})
	if err := s.Close(); err != nil {
		t.Error(err)
	}
	if s.Dir() != "" {
		t.Error("nil sink has a dir")
	}
}

func TestHotTrackerFlagsAndDecays(t *testing.T) {
	reg := metrics.NewRegistry()
	h := NewHotTracker(time.Second, 5, reg, nil)
	base := time.Unix(1000, 0)
	for i := 0; i < 4; i++ {
		if h.observeAt("owner://victim", base) {
			t.Fatalf("hot after %d observations", i+1)
		}
	}
	if !h.observeAt("owner://victim", base) {
		t.Fatal("not hot at threshold")
	}
	if got := h.HotOwners(); len(got) != 1 || got[0] != "owner://victim" {
		t.Errorf("HotOwners = %v", got)
	}
	if g := reg.Gauge("eppi_audit_hot_owners", "").Value(); g != 1 {
		t.Errorf("gauge = %v, want 1", g)
	}
	// One window later the count halves (5→2): no longer hot.
	if h.observeAt("owner://other", base.Add(1100*time.Millisecond)) {
		t.Error("cold owner reported hot")
	}
	if got := h.HotOwners(); len(got) != 0 {
		t.Errorf("HotOwners after decay = %v", got)
	}
	if g := reg.Gauge("eppi_audit_hot_owners", "").Value(); g != 0 {
		t.Errorf("gauge after decay = %v, want 0", g)
	}
	// A long idle gap fully drains the map instead of replaying windows.
	h.observeAt("owner://other", base.Add(time.Hour))
	if len(h.counts) != 1 {
		t.Errorf("counts after idle gap = %v", h.counts)
	}
}

func TestHotTrackerBoundsOwners(t *testing.T) {
	h := NewHotTracker(time.Second, 2, nil, nil)
	h.maxOwners = 3
	base := time.Unix(1000, 0)
	h.observeAt("a", base)
	h.observeAt("b", base)
	h.observeAt("c", base)
	h.observeAt("d", base) // over capacity: untracked
	if len(h.counts) != 3 {
		t.Errorf("tracked %d owners, want 3", len(h.counts))
	}
	if h.observeAt("d", base) {
		t.Error("untracked owner reported hot")
	}
}

func TestHotTrackerDisabled(t *testing.T) {
	if NewHotTracker(0, 5, nil, nil) != nil {
		t.Error("zero window should disable")
	}
	if NewHotTracker(time.Second, 0, nil, nil) != nil {
		t.Error("zero threshold should disable")
	}
	var h *HotTracker
	if h.Observe("a") {
		t.Error("nil tracker flagged an owner")
	}
	if h.HotOwners() != nil {
		t.Error("nil tracker has hot owners")
	}
}

// queryHotPathServer builds a tiny index whose benchmark owner has an
// empty column: the query machinery runs end to end (name resolution,
// column scan, stats) without the result-slice allocation a non-empty
// answer necessarily pays, isolating the audit delta.
func queryHotPathServer(tb testing.TB) *index.Server {
	tb.Helper()
	m := bitmat.MustNew(8, 2)
	for r := 0; r < 8; r++ {
		m.Set(r, 1, true)
	}
	srv, err := index.NewServer(m, []string{"owner://empty", "owner://full"})
	if err != nil {
		tb.Fatal(err)
	}
	return srv
}

// TestQueryAuditDisabledZeroAlloc is the test-form guarantee behind
// BenchmarkQueryAuditDisabled: with auditing off (nil sink), a served
// query allocates nothing on top of the query itself.
func TestQueryAuditDisabledZeroAlloc(t *testing.T) {
	srv := queryHotPathServer(t)
	var sink *Sink
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		res, err := srv.QueryCtx(ctx, "owner://empty")
		if err != nil {
			t.Fatal(err)
		}
		sink.Record(Entry{Route: "query", Owner: "owner://empty", Shard: -1, Epoch: 1, Results: len(res), Status: 200})
	})
	if allocs != 0 {
		t.Errorf("disabled-audit query path allocates %v/op, want 0", allocs)
	}
}

// BenchmarkQueryAuditDisabled measures the query hot path with
// auditing disabled — the default production configuration. Guarded at
// 0 allocs/op by TestQueryAuditDisabledZeroAlloc and recorded in
// BENCH_baseline.json by make bench-baseline.
func BenchmarkQueryAuditDisabled(b *testing.B) {
	srv := queryHotPathServer(b)
	var sink *Sink
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := srv.QueryCtx(ctx, "owner://empty")
		if err != nil {
			b.Fatal(err)
		}
		sink.Record(Entry{Route: "query", Owner: "owner://empty", Shard: -1, Epoch: 1, Results: len(res), Status: 200})
	}
}
