package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestQueryDefaultTarget(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-providers", "15", "-owners", "6", "-seed", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"index constructed", "search owner://site-0", "contacted", "retrieved"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestQueryAllOwners(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-providers", "12", "-owners", "4", "-all"}, &out); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), "search owner://"); got != 4 {
		t.Fatalf("searched %d owners, want 4", got)
	}
}

func TestQueryUnknownOwner(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-providers", "12", "-owners", "4", "-search", "nobody"}, &out); err == nil {
		t.Error("unknown owner accepted")
	}
}
