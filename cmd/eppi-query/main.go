// Command eppi-query demonstrates the two-phase search against a freshly
// constructed ε-PPI: it builds a synthetic network, constructs the index,
// and then runs QueryPPI + AuthSearch for one or more owners, printing the
// contacted providers, the noise encountered, and the records retrieved.
//
// With -owners-file it instead resolves the listed owners through the
// batched QueryPPI path (one snapshot answers the whole file), printing a
// per-owner row — misses included — instead of running the two-phase
// search.
//
// Usage:
//
//	eppi-query -providers 20 -owners 10 -search owner://site-0.example.org
//	eppi-query -providers 20 -owners 10 -all
//	eppi-query -providers 20 -owners 10 -owners-file targets.txt
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/eppi"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "eppi-query:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("eppi-query", flag.ContinueOnError)
	providers := fs.Int("providers", 20, "number of providers")
	owners := fs.Int("owners", 10, "number of owner identities")
	search := fs.String("search", "", "owner identity to search (defaults to the first owner)")
	all := fs.Bool("all", false, "search every owner")
	ownersFile := fs.String("owners-file", "", "file listing owners (one per line) to resolve via batched QueryPPI instead of searching")
	gamma := fs.Float64("gamma", 0.9, "Chernoff success ratio γ")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	d, err := workload.GenerateZipf(workload.ZipfConfig{
		Providers: *providers,
		Owners:    *owners,
		Exponent:  1.1,
		Seed:      *seed,
	})
	if err != nil {
		return err
	}
	names := make([]string, *providers)
	for i := range names {
		names[i] = fmt.Sprintf("provider-%d", i)
	}
	net, err := eppi.NewNetwork(names)
	if err != nil {
		return err
	}
	// Mirror the synthetic membership matrix into real delegations.
	for j, owner := range d.Names {
		for i := 0; i < *providers; i++ {
			if d.Matrix.Get(i, j) {
				rec := eppi.Record{Owner: owner, Kind: "visit", Body: fmt.Sprintf("record of %s at provider-%d", owner, i)}
				if err := net.Delegate(i, rec, d.Eps[j]); err != nil {
					return err
				}
			}
		}
	}
	report, err := net.ConstructPPI(eppi.WithChernoff(*gamma), eppi.WithSeed(*seed))
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "index constructed: %d owners, %d commons, λ=%.4f, search cost %d\n",
		len(report.Owners), report.CommonCount, report.Lambda, report.SearchCost)

	if *ownersFile != "" {
		return runBatch(net, *ownersFile, out)
	}

	net.GrantAll("cli-searcher")
	s, err := net.NewSearcher("cli-searcher")
	if err != nil {
		return err
	}

	targets := []string{}
	switch {
	case *all:
		targets = d.Names
	case *search != "":
		targets = []string{*search}
	default:
		targets = []string{d.Names[0]}
	}
	for _, owner := range targets {
		res, err := s.Search(owner)
		if err != nil {
			return fmt.Errorf("search %q: %w", owner, err)
		}
		fmt.Fprintf(out, "\nsearch %s\n", owner)
		fmt.Fprintf(out, "  contacted %d providers: %d true, %d noise, %d denied\n",
			res.Contacted, res.TruePositives, res.FalsePositives, res.Denied)
		fmt.Fprintf(out, "  retrieved %d records\n", len(res.Records))
	}
	return nil
}

// runBatch resolves every owner listed in path (one per line, blank lines
// and #-comments skipped) through one batched QueryPPI call and prints a
// row per owner. Misses are rows, not errors: the batch answers what it
// can and says "not indexed" for the rest.
func runBatch(net *eppi.Network, path string, out io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var owners []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		owners = append(owners, line)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(owners) == 0 {
		return fmt.Errorf("owners file %s lists no owners", path)
	}
	items, err := net.QueryBatch(context.Background(), owners)
	if err != nil {
		return err
	}
	found := 0
	fmt.Fprintf(out, "\nbatch lookup of %d owners\n", len(items))
	for _, it := range items {
		if !it.Found {
			fmt.Fprintf(out, "  %-24s not indexed\n", it.Owner)
			continue
		}
		found++
		fmt.Fprintf(out, "  %-24s %d candidate providers %v\n", it.Owner, len(it.Providers), it.Providers)
	}
	fmt.Fprintf(out, "found %d/%d\n", found, len(items))
	return nil
}
