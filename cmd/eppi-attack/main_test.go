package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestAttackAll(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-providers", "300", "-owners", "40", "-seed", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"PRIMARY ATTACK", "COMMON-IDENTITY ATTACK",
		"REBUILD / INTERSECTION ATTACK", "FREQUENCY-ESTIMATION ATTACK",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestAttackSingleKinds(t *testing.T) {
	for _, kind := range []string{"primary", "common", "rebuild", "estimate"} {
		var out bytes.Buffer
		if err := run([]string{"-kind", kind, "-providers", "200", "-owners", "30"}, &out); err != nil {
			t.Fatalf("kind %s: %v", kind, err)
		}
		if out.Len() == 0 {
			t.Fatalf("kind %s produced no output", kind)
		}
	}
}

func TestAttackUnknownKind(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-kind", "voodoo"}, &out); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
