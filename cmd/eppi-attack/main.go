// Command eppi-attack mounts the threat-model attacks against a freshly
// constructed index over a synthetic network and reports the attacker's
// measured confidence:
//
//	eppi-attack -kind primary      # pick-a-listed-provider attack (§II-B)
//	eppi-attack -kind common       # common-identity attack (§II-B)
//	eppi-attack -kind rebuild      # intersection across index rebuilds
//	eppi-attack -kind estimate     # β-inversion frequency estimation
//	eppi-attack -kind all
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"

	"repro/internal/attack"
	"repro/internal/bitmat"
	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "eppi-attack:", err)
		os.Exit(1)
	}
}

type lab struct {
	out   io.Writer
	data  *workload.Dataset
	cfg   core.Config
	index *core.Result
	m, n  int
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("eppi-attack", flag.ContinueOnError)
	kind := fs.String("kind", "all", "attack: primary|common|rebuild|estimate|all")
	providers := fs.Int("providers", 1000, "number of providers m")
	owners := fs.Int("owners", 60, "number of owner identities n")
	seed := fs.Int64("seed", 1, "random seed")
	xi := fs.Float64("xi", 0.8, "mixing target ξ")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *kind {
	case "primary", "common", "rebuild", "estimate", "all":
	default:
		return fmt.Errorf("unknown attack kind %q", *kind)
	}

	d, err := workload.GenerateZipf(workload.ZipfConfig{
		Providers:    *providers,
		Owners:       *owners,
		Exponent:     1.2,
		MaxFrequency: *providers / 10,
		EpsLow:       0.3,
		EpsHigh:      0.9,
		Seed:         *seed,
	})
	if err != nil {
		return err
	}
	// Plant a few true commons so the common-identity attack has victims.
	for j := 0; j < 3 && j < *owners; j++ {
		for i := 0; i < *providers; i++ {
			d.Matrix.Set(i, j, true)
		}
	}
	cfg := core.Config{
		Policy: mathx.PolicyChernoff, Gamma: 0.9, Mode: core.ModeTrusted,
		Seed: *seed + 1, XiOverride: *xi,
	}
	res, err := core.Construct(d.Matrix, d.Eps, cfg)
	if err != nil {
		return err
	}
	l := &lab{out: out, data: d, cfg: cfg, index: res, m: *providers, n: *owners}
	fmt.Fprintf(out, "target: ε-PPI over m=%d providers, n=%d owners (ξ=%.2f, %d true commons)\n\n",
		*providers, *owners, res.Xi, res.CommonCount)

	if *kind == "primary" || *kind == "all" {
		if err := l.primary(*seed); err != nil {
			return err
		}
	}
	if *kind == "common" || *kind == "all" {
		if err := l.common(); err != nil {
			return err
		}
	}
	if *kind == "rebuild" || *kind == "all" {
		if err := l.rebuild(); err != nil {
			return err
		}
	}
	if *kind == "estimate" || *kind == "all" {
		if err := l.estimate(); err != nil {
			return err
		}
	}
	return nil
}

func (l *lab) primary(seed int64) error {
	rng := rand.New(rand.NewSource(seed + 2))
	victims := 0
	worstExcess := math.Inf(-1)
	var worstConf, worstEps float64
	for j := 0; j < l.n; j++ {
		if uint64(l.data.Matrix.ColCount(j)) >= l.index.Thresholds[j] {
			continue // commons are the common-identity attack's business
		}
		victims++
		conf, err := attack.PrimaryConfidence(l.data.Matrix, l.index.Published, j)
		if err != nil {
			return err
		}
		if excess := conf - (1 - l.data.Eps[j]); excess > worstExcess {
			worstExcess, worstConf, worstEps = excess, conf, l.data.Eps[j]
		}
	}
	trialHits, trials := 0, 2000
	for i := 0; i < trials; i++ {
		j := rng.Intn(l.n)
		if ok, attackable := attack.PrimaryAttackTrial(rng, l.data.Matrix, l.index.Published, j); attackable && ok {
			trialHits++
		}
	}
	fmt.Fprintf(l.out, "PRIMARY ATTACK over %d non-common victims\n", victims)
	fmt.Fprintf(l.out, "  worst guarantee slack: confidence %.3f vs bound %.3f (excess %.3f)\n",
		worstConf, 1-worstEps, worstExcess)
	fmt.Fprintf(l.out, "  random-victim trials: %d/%d succeeded (%.3f)\n\n", trialHits, trials, float64(trialHits)/float64(trials))
	return nil
}

func (l *lab) common() error {
	isCommon := make([]bool, l.n)
	for j := 0; j < l.n; j++ {
		isCommon[j] = uint64(l.data.Matrix.ColCount(j)) >= l.index.Thresholds[j]
	}
	res, err := attack.CommonIdentityAttack(
		attack.PublishedFrequencies(l.index.Published), uint64(l.m), isCommon)
	if err != nil {
		return err
	}
	fmt.Fprintf(l.out, "COMMON-IDENTITY ATTACK\n")
	fmt.Fprintf(l.out, "  published-as-common: %d identities, truly common: %d\n", len(res.Picked), res.TrueCommons)
	fmt.Fprintf(l.out, "  attacker confidence: %.3f (target ≤ 1−ξ = %.3f)\n\n", res.Confidence, 1-l.index.Xi)
	return nil
}

func (l *lab) rebuild() error {
	snapshots := []*bitmat.Matrix{l.index.Published}
	fmt.Fprintf(l.out, "REBUILD / INTERSECTION ATTACK (victim: first non-common identity)\n")
	victim := -1
	for j := 0; j < l.n; j++ {
		if uint64(l.data.Matrix.ColCount(j)) < l.index.Thresholds[j] && l.data.Matrix.ColCount(j) > 0 && !l.index.Hidden[j] {
			victim = j
			break
		}
	}
	if victim < 0 {
		fmt.Fprintln(l.out, "  no revealed victim available")
		return nil
	}
	for k := 2; k <= 4; k++ {
		cfg := l.cfg
		cfg.Seed = l.cfg.Seed + int64(k)*97
		res, err := core.Construct(l.data.Matrix, l.data.Eps, cfg)
		if err != nil {
			return err
		}
		snapshots = append(snapshots, res.Published)
	}
	for k := 1; k <= len(snapshots); k++ {
		inter, err := attack.Intersect(l.data.Matrix, snapshots[:k], victim)
		if err != nil {
			return err
		}
		fmt.Fprintf(l.out, "  %d snapshot(s): %d survivors, confidence %.3f\n", k, inter.Survivors, inter.Confidence)
	}
	fmt.Fprintln(l.out, "  (the deployed index is static precisely to deny the attacker extra snapshots)")
	fmt.Fprintln(l.out)
	return nil
}

func (l *lab) estimate() error {
	rep, err := attack.EstimateAll(l.data.Matrix, l.index.Published, l.index.Betas)
	if err != nil {
		return err
	}
	fmt.Fprintf(l.out, "FREQUENCY-ESTIMATION ATTACK (β inversion)\n")
	fmt.Fprintf(l.out, "  revealed identities attacked: %d (mean |f̂−f| = %.1f providers)\n",
		rep.RevealedCount, rep.RevealedMeanError)
	fmt.Fprintf(l.out, "  hidden identities (estimator blind): %d\n", rep.BlindCount)
	return nil
}
