// Command eppi-construct builds an ε-PPI over a synthetic information
// network and prints the construction statistics: per-owner β values,
// common-identity mixing, search cost, and (in secure mode) the protocol
// traffic and circuit sizes.
//
// Usage:
//
//	eppi-construct -providers 100 -owners 50 [-policy chernoff] [-gamma 0.9]
//	eppi-construct -providers 12 -owners 8 -secure -c 3 [-tcp]
//	eppi-construct -providers 12 -owners 8 -secure -trace run.json
//	eppi-construct -providers 100 -owners 50 -out index.eppi
//	eppi-construct -providers 100 -owners 50 -shards 4 -out shards/
//	eppi-construct -providers 100 -owners 50 -shards 4 -epoch-dir store/
//
// -out exports the constructed index as a checksummed snapshot that
// eppi-serve -index loads. With -shards N the index is column-partitioned
// N ways instead and -out names a directory receiving one snapshot per
// shard plus a checksummed manifest; eppi-serve -index dir -shard k/N
// serves one shard of it, fronted by eppi-gateway.
//
// -epoch-dir publishes the index into an epoch store instead: the shard
// set is written under epochs/<n>/ and the store's CURRENT pointer is
// atomically flipped to the new epoch, so eppi-serve -epoch-dir nodes
// hot-swap to it without restarting. Re-running the command against the
// same store publishes the next epoch. Each epoch carries its ε-audit
// privacy report (epochs/<n>/privacy.json, internal/privacy): the
// achieved per-ε-decile false-positive protection of the published
// matrix, re-derived from M vs M' rather than trusted from the β math.
//
// -trace records a span tree of the whole construction — β-phase,
// SecSumShare, per-batch MPC with GMW/OT phases, mixing, publication —
// and writes it as Chrome trace-event JSON (load it in Perfetto).
// Progress logs are structured (log/slog, -log-level / -log-format).
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"

	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/index"
	"repro/internal/logx"
	"repro/internal/mathx"
	"repro/internal/metrics"
	"repro/internal/privacy"
	"repro/internal/shard"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "eppi-construct:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("eppi-construct", flag.ContinueOnError)
	providers := fs.Int("providers", 100, "number of providers m")
	owners := fs.Int("owners", 50, "number of owner identities n")
	policyName := fs.String("policy", "chernoff", "β policy: basic|inc-exp|chernoff")
	delta := fs.Float64("delta", 0.02, "Δ for the inc-exp policy")
	gamma := fs.Float64("gamma", 0.9, "γ for the chernoff policy")
	secure := fs.Bool("secure", false, "run the real SecSumShare+MPC protocol")
	c := fs.Int("c", 3, "coordinator count (secure mode)")
	tcp := fs.Bool("tcp", false, "use TCP loopback transport (secure mode)")
	seed := fs.Int64("seed", 1, "random seed")
	workers := fs.Int("workers", 0, "construction worker pool size (0 = NumCPU); output is identical at any value")
	zipf := fs.Float64("zipf", 1.1, "Zipf exponent of identity frequencies")
	outPath := fs.String("out", "", "export the index: a snapshot file, or a shard-set directory with -shards")
	shards := fs.Int("shards", 0, "with -out or -epoch-dir: column-partition the index into this many shards + manifest")
	epochDir := fs.String("epoch-dir", "", "publish the index as the next epoch of this epoch store (atomic CURRENT flip)")
	epochKeep := fs.Int("epoch-keep", 0, "with -epoch-dir: keep only the newest N epochs after publishing (0 = keep all; the epoch named by CURRENT is never pruned)")
	tracePath := fs.String("trace", "", "write a Chrome trace-event JSON of the construction to this file")
	metricsOut := fs.String("metrics-out", "", "write a Prometheus text exposition of the run (eppi_build_info, runtime gauges) to this file")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn, error")
	logFormat := fs.String("log-format", "text", "log format: text or json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := logx.New(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}

	var policy mathx.Policy
	switch *policyName {
	case "basic":
		policy = mathx.PolicyBasic
	case "inc-exp":
		policy = mathx.PolicyIncremented
	case "chernoff":
		policy = mathx.PolicyChernoff
	default:
		return fmt.Errorf("unknown policy %q", *policyName)
	}

	d, err := workload.GenerateZipf(workload.ZipfConfig{
		Providers: *providers,
		Owners:    *owners,
		Exponent:  *zipf,
		Seed:      *seed,
	})
	if err != nil {
		return err
	}

	cfg := core.Config{
		Policy:  policy,
		Delta:   *delta,
		Gamma:   *gamma,
		Mode:    core.ModeTrusted,
		Seed:    *seed,
		Workers: *workers,
	}
	if *secure {
		cfg.Mode = core.ModeSecure
		cfg.C = *c
		if *tcp {
			cfg.NewNetwork = func(parties int) (transport.Network, error) {
				return transport.NewTCP(parties)
			}
		}
	}
	var tracer *trace.Tracer
	if *tracePath != "" {
		tracer = trace.New(1)
		cfg.Tracer = tracer
	}
	// A batch job's metrics live in one terminal snapshot, not a scrape
	// loop: the registry exists so construct runs are attributable the
	// same way fleet scrapes are (eppi_build_info join).
	reg := metrics.NewRegistry()
	metrics.RegisterBuildInfo(reg)
	metrics.RegisterRuntime(reg)
	version, goVersion, revision := metrics.BuildInfo()
	logger.Info("constructing",
		slog.Int("providers", *providers), slog.Int("owners", *owners),
		slog.String("policy", policy.String()), slog.String("mode", cfg.Mode.String()),
		slog.Bool("traced", tracer != nil),
		slog.String("build", version+"/"+goVersion+"/"+revision))
	res, err := core.Construct(d.Matrix, d.Eps, cfg)
	if err != nil {
		return err
	}
	if tracer != nil {
		if err := writeTrace(*tracePath, tracer); err != nil {
			return err
		}
		logger.Info("trace written", slog.String("path", *tracePath))
	}
	// Audit what was actually constructed before anything is exported:
	// the report re-derives the achieved FP protection from M vs M'
	// (internal/privacy) and travels with every epoch publication. The
	// operator-only detail (identity ε deciles, full violation records)
	// is published alongside it as privacy_detail.json for eppi-audit —
	// it stays a filesystem artifact and is never served.
	rep, det, err := privacy.Compute(privacy.Input{
		Truth: d.Matrix, Published: res.Published, Names: d.Names, Eps: d.Eps,
		Thresholds: res.Thresholds, Hidden: res.Hidden,
		Policy: policy.String(), Gamma: *gamma,
		Lambda: res.Lambda, Xi: res.Xi,
	})
	if err != nil {
		return fmt.Errorf("privacy audit: %w", err)
	}
	srv, err := index.NewServer(res.Published, d.Names)
	if err != nil {
		return err
	}
	if *epochDir != "" {
		if *outPath != "" {
			return fmt.Errorf("-epoch-dir and -out are mutually exclusive")
		}
		n := *shards
		if n <= 0 {
			n = 1
		}
		pub := epoch.Publisher{Root: *epochDir, Keep: *epochKeep}
		e, err := pub.PublishWithReport(srv.PublishedMatrix(), srv.Names(), n, rep, det)
		if err != nil {
			return fmt.Errorf("publish epoch: %w", err)
		}
		logger.Info("epoch published", slog.String("dir", *epochDir),
			slog.Uint64("epoch", e), slog.Int("shards", n),
			slog.Float64("success_ratio", rep.SuccessRatio),
			slog.Int("privacy_violations", rep.ViolationCount))
	} else if *outPath != "" {
		if err := export(*outPath, *shards, srv, logger); err != nil {
			return err
		}
	} else if *shards > 0 {
		return fmt.Errorf("-shards %d needs -out naming the shard-set directory", *shards)
	}
	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, reg); err != nil {
			return err
		}
		logger.Info("metrics snapshot written", slog.String("path", *metricsOut))
	}

	fmt.Fprintf(out, "constructed ε-PPI: m=%d providers, n=%d owners, policy=%s, mode=%s\n",
		*providers, *owners, policy, cfg.Mode)
	fmt.Fprintf(out, "  true commons:   %d\n", res.CommonCount)
	fmt.Fprintf(out, "  mixing λ:       %.4f (ξ=%.3f)\n", res.Lambda, res.Xi)
	hidden := 0
	for _, h := range res.Hidden {
		if h {
			hidden++
		}
	}
	fmt.Fprintf(out, "  published common set: %d identities\n", hidden)
	truePositives := d.Matrix.Count()
	fmt.Fprintf(out, "  search cost:    %d published positives (%d true, %.2fx overhead)\n",
		srv.SearchCost(), truePositives, float64(srv.SearchCost())/float64(truePositives))
	fmt.Fprintf(out, "  privacy audit:  success ratio %.4f, %d Eq.1 violations\n",
		rep.SuccessRatio, rep.ViolationCount)
	if res.Secure != nil {
		s := res.Secure
		fmt.Fprintf(out, "  SecSumShare:    %d msgs, %d bytes, %d rounds\n", s.SecSum.Messages, s.SecSum.Bytes, s.SecSumRounds)
		fmt.Fprintf(out, "  CountBelow:     %d gates (%d AND, depth %d)\n",
			s.CountBelowCircuit.Gates, s.CountBelowCircuit.AndGates, s.CountBelowCircuit.AndDepth)
		fmt.Fprintf(out, "  Reveal:         %d gates (%d AND, depth %d)\n",
			s.RevealCircuit.Gates, s.RevealCircuit.AndGates, s.RevealCircuit.AndDepth)
		fmt.Fprintf(out, "  MPC traffic:    %d msgs, %d bytes, %d rounds\n", s.MPC.Messages, s.MPC.Bytes, s.MPCRounds)
	}
	fmt.Fprintln(out, "sample owner outcomes (first 10):")
	for j := 0; j < len(d.Names) && j < 10; j++ {
		fmt.Fprintf(out, "  %-34s freq=%-5d ε=%.2f β=%.4f hidden=%v\n",
			d.Names[j], d.Frequency(j), d.Eps[j], res.Betas[j], res.Hidden[j])
	}
	return nil
}

// export writes the constructed index to disk: a single checksummed
// snapshot file, or (shards > 0) a directory of per-shard snapshots plus
// a checksummed manifest that eppi-serve -shard and eppi-gateway consume.
func export(path string, shards int, srv *index.Server, logger *slog.Logger) error {
	if shards > 0 {
		if err := os.MkdirAll(path, 0o755); err != nil {
			return fmt.Errorf("export: %w", err)
		}
		man, err := shard.WriteSet(path, srv.PublishedMatrix(), srv.Names(), shards)
		if err != nil {
			return fmt.Errorf("export shard set: %w", err)
		}
		logger.Info("shard set written", slog.String("dir", path),
			slog.Int("shards", man.Shards), slog.Int("owners", man.Owners))
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("export: %w", err)
	}
	if _, err := srv.WriteTo(f); err != nil {
		f.Close()
		return fmt.Errorf("export: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("export: %w", err)
	}
	logger.Info("index written", slog.String("path", path),
		slog.Int("owners", srv.Owners()))
	return nil
}

// writeMetrics dumps the run's Prometheus exposition to a file — the
// batch-job analogue of a /v1/metrics scrape.
func writeMetrics(path string, reg *metrics.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	if _, err := reg.WriteTo(f); err != nil {
		f.Close()
		return fmt.Errorf("metrics: %w", err)
	}
	return f.Close()
}

// writeTrace exports the tracer's recorded construction trace as Chrome
// trace-event JSON.
func writeTrace(path string, tracer *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := trace.WriteChrome(f, tracer.Recent()); err != nil {
		f.Close()
		return fmt.Errorf("trace: %w", err)
	}
	return f.Close()
}
