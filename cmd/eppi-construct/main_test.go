package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/index"
	"repro/internal/shard"
)

func TestConstructTrusted(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-providers", "60", "-owners", "20", "-seed", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"constructed ε-PPI", "mode=trusted", "search cost", "sample owner outcomes"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestConstructSecure(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-providers", "8", "-owners", "4", "-secure", "-c", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"mode=secure", "SecSumShare", "CountBelow", "MPC traffic"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestConstructPolicies(t *testing.T) {
	for _, policy := range []string{"basic", "inc-exp", "chernoff"} {
		var out bytes.Buffer
		if err := run([]string{"-providers", "30", "-owners", "8", "-policy", policy}, &out); err != nil {
			t.Fatalf("policy %s: %v", policy, err)
		}
	}
	var out bytes.Buffer
	if err := run([]string{"-policy", "nonsense"}, &out); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestConstructTraceExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var out bytes.Buffer
	err := run([]string{"-providers", "9", "-owners", "6", "-secure", "-c", "3",
		"-trace", path, "-log-level", "error"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatalf("invalid Chrome trace JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range file.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"core.construct", "secsum.share", "mpc.countbelow",
		"mpc.reveal", "gmw.and_rounds", "core.publish"} {
		if !names[want] {
			t.Errorf("trace export missing span %q", want)
		}
	}
}

func TestConstructBadLogConfig(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-log-level", "shout"}, &out); err == nil {
		t.Error("unknown log level accepted")
	}
}

func TestConstructExportIndex(t *testing.T) {
	path := filepath.Join(t.TempDir(), "index.eppi")
	var out bytes.Buffer
	if err := run([]string{"-providers", "10", "-owners", "6", "-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	srv, err := index.Read(f)
	if err != nil {
		t.Fatalf("exported index unreadable: %v", err)
	}
	if srv.Providers() != 10 || srv.Owners() != 6 {
		t.Fatalf("exported dims %dx%d", srv.Providers(), srv.Owners())
	}
}

func TestConstructExportShardSet(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "shards")
	var out bytes.Buffer
	if err := run([]string{"-providers", "10", "-owners", "6", "-shards", "2", "-out", dir}, &out); err != nil {
		t.Fatal(err)
	}
	man, err := shard.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.Shards != 2 || man.Owners != 6 {
		t.Fatalf("manifest = %+v", man)
	}
	if err := man.Verify(dir); err != nil {
		t.Fatalf("fresh shard set fails verification: %v", err)
	}
	if _, err := man.LoadShard(dir, 1); err != nil {
		t.Fatal(err)
	}
	// -shards without -out is rejected.
	if err := run([]string{"-providers", "10", "-owners", "6", "-shards", "2"}, &out); err == nil {
		t.Error("-shards without -out accepted")
	}
}
