package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestConstructTrusted(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-providers", "60", "-owners", "20", "-seed", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"constructed ε-PPI", "mode=trusted", "search cost", "sample owner outcomes"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestConstructSecure(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-providers", "8", "-owners", "4", "-secure", "-c", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"mode=secure", "SecSumShare", "CountBelow", "MPC traffic"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestConstructPolicies(t *testing.T) {
	for _, policy := range []string{"basic", "inc-exp", "chernoff"} {
		var out bytes.Buffer
		if err := run([]string{"-providers", "30", "-owners", "8", "-policy", policy}, &out); err != nil {
			t.Fatalf("policy %s: %v", policy, err)
		}
	}
	var out bytes.Buffer
	if err := run([]string{"-policy", "nonsense"}, &out); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestConstructTraceExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var out bytes.Buffer
	err := run([]string{"-providers", "9", "-owners", "6", "-secure", "-c", "3",
		"-trace", path, "-log-level", "error"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatalf("invalid Chrome trace JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range file.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"core.construct", "secsum.share", "mpc.countbelow",
		"mpc.reveal", "gmw.and_rounds", "core.publish"} {
		if !names[want] {
			t.Errorf("trace export missing span %q", want)
		}
	}
}

func TestConstructBadLogConfig(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-log-level", "shout"}, &out); err == nil {
		t.Error("unknown log level accepted")
	}
}
