package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestConstructTrusted(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-providers", "60", "-owners", "20", "-seed", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"constructed ε-PPI", "mode=trusted", "search cost", "sample owner outcomes"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestConstructSecure(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-providers", "8", "-owners", "4", "-secure", "-c", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"mode=secure", "SecSumShare", "CountBelow", "MPC traffic"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestConstructPolicies(t *testing.T) {
	for _, policy := range []string{"basic", "inc-exp", "chernoff"} {
		var out bytes.Buffer
		if err := run([]string{"-providers", "30", "-owners", "8", "-policy", policy}, &out); err != nil {
			t.Fatalf("policy %s: %v", policy, err)
		}
	}
	var out bytes.Buffer
	if err := run([]string{"-policy", "nonsense"}, &out); err == nil {
		t.Error("unknown policy accepted")
	}
}
