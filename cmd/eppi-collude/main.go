// Command eppi-collude demonstrates the collusion tolerance of the ε-PPI
// construction protocol: it runs SecSumShare over a synthetic network with
// a recording transport, hands the chosen coalition everything it saw, and
// reports whether the coalition can reconstruct the private identity
// frequencies.
//
// Usage:
//
//	eppi-collude -providers 9 -c 3 -coalition 0,1        # fails (< c coordinators)
//	eppi-collude -providers 9 -c 3 -coalition 0,1,2      # succeeds (all coordinators)
//	eppi-collude -providers 9 -c 3 -coalition 3,4,5,6,7  # fails (no coordinators)
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/collusion"
	"repro/internal/field"
	"repro/internal/secretshare"
	"repro/internal/secsum"
	"repro/internal/transport"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "eppi-collude:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("eppi-collude", flag.ContinueOnError)
	providers := fs.Int("providers", 9, "number of providers m")
	owners := fs.Int("owners", 5, "number of owner identities")
	c := fs.Int("c", 3, "share/coordinator count (tolerates c-1 colluders)")
	coalitionArg := fs.String("coalition", "0,1", "comma-separated colluding provider ids")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	members, err := parseIDs(*coalitionArg)
	if err != nil {
		return err
	}

	d, err := workload.GenerateZipf(workload.ZipfConfig{
		Providers: *providers, Owners: *owners, Exponent: 1.1, Seed: *seed,
	})
	if err != nil {
		return err
	}
	inputs := make([][]uint64, *providers)
	for i := range inputs {
		inputs[i] = make([]uint64, *owners)
		for j := 0; j < *owners; j++ {
			if d.Matrix.Get(i, j) {
				inputs[i][j] = 1
			}
		}
	}

	f, err := field.New(field.NextPrime(uint64(*providers) + 1))
	if err != nil {
		return err
	}
	scheme, err := secretshare.New(f, *c)
	if err != nil {
		return err
	}
	inner, err := transport.NewInMem(*providers)
	if err != nil {
		return err
	}
	rec := collusion.NewRecording(inner)
	defer rec.Close()
	if _, err := secsum.Run(rec, scheme, inputs, *seed); err != nil {
		return fmt.Errorf("SecSumShare: %w", err)
	}

	fmt.Fprintf(out, "SecSumShare completed: m=%d providers, c=%d (tolerates %d colluders)\n",
		*providers, *c, *c-1)
	fmt.Fprintf(out, "coalition: providers %v pool their received messages and inputs\n", members)

	coal, err := collusion.NewCoalition(rec, members, inputs)
	if err != nil {
		return err
	}
	freqs, err := coal.ReconstructFrequencies(scheme, *owners)
	switch {
	case errors.Is(err, collusion.ErrInsufficientView):
		fmt.Fprintf(out, "RESULT: reconstruction FAILED — %v\n", err)
		fmt.Fprintln(out, "        (Theorem 4.1: fewer than c coordinator vectors reveal nothing)")
	case err != nil:
		return err
	default:
		fmt.Fprintln(out, "RESULT: reconstruction SUCCEEDED — the coalition holds all c coordinator vectors:")
		for j, got := range freqs {
			truth := d.Matrix.ColCount(j)
			fmt.Fprintf(out, "        %-34s reconstructed=%d truth=%d\n", d.Names[j], got, truth)
		}
		fmt.Fprintln(out, "        (this is exactly the c-collusion boundary the protocol documents)")
	}
	return nil
}

func parseIDs(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		id, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad coalition member %q: %w", p, err)
		}
		out = append(out, id)
	}
	if len(out) == 0 {
		return nil, errors.New("empty coalition")
	}
	return out, nil
}
