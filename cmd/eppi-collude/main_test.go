package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestColludeBelowThreshold(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-coalition", "0,1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "FAILED") {
		t.Fatalf("sub-threshold coalition did not fail:\n%s", out.String())
	}
}

func TestColludeFullCoordinators(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-coalition", "0,1,2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "SUCCEEDED") {
		t.Fatalf("full-coordinator coalition did not succeed:\n%s", s)
	}
	if !strings.Contains(s, "reconstructed=") {
		t.Fatal("reconstruction values missing")
	}
}

func TestColludeParseErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-coalition", ""}, &out); err == nil {
		t.Error("empty coalition accepted")
	}
	if err := run([]string{"-coalition", "a,b"}, &out); err == nil {
		t.Error("non-numeric coalition accepted")
	}
	if err := run([]string{"-coalition", "99"}, &out); err == nil {
		t.Error("out-of-range member accepted")
	}
}

func TestParseIDs(t *testing.T) {
	got, err := parseIDs(" 1, 2 ,3 ")
	if err != nil || len(got) != 3 || got[2] != 3 {
		t.Fatalf("parseIDs = %v, %v", got, err)
	}
}
