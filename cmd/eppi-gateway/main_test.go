package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParseShards(t *testing.T) {
	got, err := parseShards("http://a:1,http://b:2; http://c:3")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || len(got[0]) != 2 || len(got[1]) != 1 {
		t.Fatalf("parseShards = %v", got)
	}
	if got[0][1] != "http://b:2" || got[1][0] != "http://c:3" {
		t.Fatalf("parseShards = %v", got)
	}
	for _, bad := range []string{"", ";", "a:1", "http://a:1;;http://b:2"} {
		if _, err := parseShards(bad); err == nil {
			t.Errorf("parseShards(%q) accepted", bad)
		}
	}
}

func TestSelfbenchWritesSnapshot(t *testing.T) {
	// The full -selfbench path: demo fleet on loopback, lookups through
	// the gateway, snapshot appended twice to the same history file.
	baseline := filepath.Join(t.TempDir(), "BENCH_gateway.json")
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	args := []string{
		"-selfbench", "40", "-bench-shards", "2",
		"-providers", "10", "-owners", "12",
		"-baseline", baseline, "-log-level", "error",
	}
	for i := 0; i < 2; i++ {
		if err := run(context.Background(), args, devnull); err != nil {
			t.Fatalf("selfbench run %d: %v", i, err)
		}
	}
	raw, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	var history []benchSnapshot
	if err := json.Unmarshal(raw, &history); err != nil {
		t.Fatalf("baseline not a snapshot array: %v\n%s", err, raw)
	}
	if len(history) != 2 {
		t.Fatalf("history has %d entries, want 2 (appended)", len(history))
	}
	for i, snap := range history {
		if snap.Lookups != 40 || snap.Shards != 2 {
			t.Fatalf("entry %d = %+v", i, snap)
		}
		if snap.Cold.QPS <= 0 || snap.Warm.QPS <= 0 {
			t.Fatalf("entry %d has non-positive qps: %+v", i, snap)
		}
		if snap.BatchSize != benchBatchSize || snap.BatchCold == nil || snap.BatchWarm == nil {
			t.Fatalf("entry %d lacks batch phases: %+v", i, snap)
		}
		if snap.BatchWarm.QPS <= 0 || snap.BatchWarm.P50Nanos <= 0 {
			t.Fatalf("entry %d batch warm = %+v, want positive qps and ns percentiles", i, snap.BatchWarm)
		}
	}
}

// TestBenchPhaseFromSubMicrosecond pins the fix for the µs-rounding bug:
// warm percentiles well under a microsecond must encode as non-zero ns
// integers and fractional µs floats (they used to round down to 0).
func TestBenchPhaseFromSubMicrosecond(t *testing.T) {
	lat := []time.Duration{300, 450, 600, 750, 900} // nanoseconds
	p := benchPhaseFrom(lat, 5, 3*time.Microsecond)
	if p.P50Nanos <= 0 || p.P95Nanos <= 0 || p.P99Nanos <= 0 {
		t.Fatalf("sub-µs percentiles rounded to zero: %+v", p)
	}
	if p.P50Micros <= 0 || p.P50Micros >= 1 {
		t.Fatalf("p50_us = %v, want a fraction in (0, 1)", p.P50Micros)
	}
	if p.P50Micros != float64(p.P50Nanos)/1e3 {
		t.Fatalf("µs field %v disagrees with ns field %d", p.P50Micros, p.P50Nanos)
	}
	if p.QPS <= 0 {
		t.Fatalf("qps = %v", p.QPS)
	}
}

func TestBenchPhaseFromPercentiles(t *testing.T) {
	// 1µs..100µs: nearest-rank picks index floor(p·n).
	lat := make([]time.Duration, 100)
	for i := range lat {
		// Reverse order: benchPhaseFrom must sort before picking.
		lat[i] = time.Duration(100-i) * time.Microsecond
	}
	p := benchPhaseFrom(lat, 100, 100*time.Millisecond)
	if want := int64(51_000); p.P50Nanos != want {
		t.Fatalf("p50 = %dns, want %d", p.P50Nanos, want)
	}
	if want := int64(96_000); p.P95Nanos != want {
		t.Fatalf("p95 = %dns, want %d", p.P95Nanos, want)
	}
	if want := int64(100_000); p.P99Nanos != want {
		t.Fatalf("p99 = %dns, want %d", p.P99Nanos, want)
	}
	if want := 100 / 0.1; p.QPS != want {
		t.Fatalf("qps = %v, want %v", p.QPS, want)
	}
}

func TestBenchPhaseFromDegenerateInputs(t *testing.T) {
	if p := benchPhaseFrom(nil, 0, time.Second); p != (benchPhase{}) {
		t.Fatalf("empty latencies: %+v, want zero phase", p)
	}
	if p := benchPhaseFrom([]time.Duration{time.Millisecond}, 1, 0); p != (benchPhase{}) {
		t.Fatalf("zero elapsed: %+v, want zero phase", p)
	}
	if p := benchPhaseFrom([]time.Duration{time.Millisecond}, 1, time.Second); p.P50Nanos != int64(time.Millisecond) {
		t.Fatalf("single sample p50 = %d, want 1ms", p.P50Nanos)
	}
}

// TestBenchSnapshotReadsPreBatchHistory: entries written before the batch
// pipeline (whole-µs percentiles, no batch fields) must still round-trip
// through benchSnapshot so appending to an old history file keeps working.
func TestBenchSnapshotReadsPreBatchHistory(t *testing.T) {
	old := `[{"timestamp":"2026-07-01T00:00:00Z","shards":2,"providers":10,"owners":12,
		"seed":7,"lookups":40,
		"cold":{"p50_us":120,"p95_us":300,"p99_us":400,"qps":8000},
		"warm":{"p50_us":1,"p95_us":2,"p99_us":3,"qps":500000}}]`
	var history []benchSnapshot
	if err := json.Unmarshal([]byte(old), &history); err != nil {
		t.Fatalf("old history rejected: %v", err)
	}
	if len(history) != 1 || history[0].Cold.P50Micros != 120 || history[0].Warm.QPS != 500000 {
		t.Fatalf("old history misread: %+v", history)
	}
	if history[0].BatchCold != nil || history[0].BatchWarm != nil {
		t.Fatalf("pre-batch entry grew batch phases: %+v", history[0])
	}
	// And writing it back must not invent batch keys for the old entry.
	out, err := json.Marshal(history)
	if err != nil {
		t.Fatal(err)
	}
	if s := string(out); strings.Contains(s, "batch_warm") || strings.Contains(s, "batch_cold") {
		t.Fatalf("re-encoded pre-batch entry has batch keys: %s", s)
	}
}
