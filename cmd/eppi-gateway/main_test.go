package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestParseShards(t *testing.T) {
	got, err := parseShards("http://a:1,http://b:2; http://c:3")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || len(got[0]) != 2 || len(got[1]) != 1 {
		t.Fatalf("parseShards = %v", got)
	}
	if got[0][1] != "http://b:2" || got[1][0] != "http://c:3" {
		t.Fatalf("parseShards = %v", got)
	}
	for _, bad := range []string{"", ";", "a:1", "http://a:1;;http://b:2"} {
		if _, err := parseShards(bad); err == nil {
			t.Errorf("parseShards(%q) accepted", bad)
		}
	}
}

func TestSelfbenchWritesSnapshot(t *testing.T) {
	// The full -selfbench path: demo fleet on loopback, lookups through
	// the gateway, snapshot appended twice to the same history file.
	baseline := filepath.Join(t.TempDir(), "BENCH_gateway.json")
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	args := []string{
		"-selfbench", "40", "-bench-shards", "2",
		"-providers", "10", "-owners", "12",
		"-baseline", baseline, "-log-level", "error",
	}
	for i := 0; i < 2; i++ {
		if err := run(context.Background(), args, devnull); err != nil {
			t.Fatalf("selfbench run %d: %v", i, err)
		}
	}
	raw, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	var history []benchSnapshot
	if err := json.Unmarshal(raw, &history); err != nil {
		t.Fatalf("baseline not a snapshot array: %v\n%s", err, raw)
	}
	if len(history) != 2 {
		t.Fatalf("history has %d entries, want 2 (appended)", len(history))
	}
	for i, snap := range history {
		if snap.Lookups != 40 || snap.Shards != 2 {
			t.Fatalf("entry %d = %+v", i, snap)
		}
		if snap.Cold.QPS <= 0 || snap.Warm.QPS <= 0 {
			t.Fatalf("entry %d has non-positive qps: %+v", i, snap)
		}
	}
}
