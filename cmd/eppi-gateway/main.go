// Command eppi-gateway is the routing tier of the distributed ε-PPI
// locator service: a stateless front door over a fleet of column-shard
// eppi-serve nodes. Lookups are routed to the shard owning the identity
// (stable hash, no coordination), searches fan out to every shard, and
// the gateway layers response caching, hedged requests, health-probed
// replica failover and load shedding on top (internal/gateway).
//
// Usage:
//
//	eppi-gateway -addr 127.0.0.1:8090 \
//	  -shards "http://127.0.0.1:8081,http://127.0.0.1:8083;http://127.0.0.1:8082"
//
// -shards lists replica base URLs per shard: commas separate replicas of
// one shard, semicolons separate shards. The example above routes over
// two shards — shard 0 with two replicas, shard 1 with one.
//
// Endpoints mirror a shard node: GET /v1/query?owner=…, GET
// /v1/search?q=…, GET /v1/stats (aggregated over shards), GET
// /v1/healthz (per-replica probe verdicts), GET /v1/metrics, GET
// /v1/traces.
//
// Benchmark mode:
//
//	eppi-gateway -selfbench 2000 -baseline BENCH_gateway.json
//
// boots a self-contained demo fleet (deterministic demo index, column
// shards served on loopback), drives N lookups through the full gateway
// stack cold and warm, and appends a latency snapshot to the baseline
// file so gateway performance is tracked next to BENCH_baseline.json.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/httpapi"
	"repro/internal/logx"
	"repro/internal/mathx"
	"repro/internal/metrics"
	"repro/internal/shard"
	"repro/internal/trace"
	"repro/internal/workload"
)

const drainTimeout = 5 * time.Second

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "eppi-gateway:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out *os.File) error {
	fs := flag.NewFlagSet("eppi-gateway", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8090", "listen address")
	shardsSpec := fs.String("shards", "", "replica base URLs: commas between replicas, semicolons between shards")
	cacheSize := fs.Int("cache", gateway.DefaultCacheSize, "response cache entries (negative disables)")
	cacheTTL := fs.Duration("cache-ttl", 0, "response cache entry lifetime (0: bounded only by LRU and epoch turnover)")
	maxInFlight := fs.Int("max-inflight", gateway.DefaultMaxInFlight, "admitted-request bound before shedding")
	queueWait := fs.Duration("queue-wait", gateway.DefaultQueueWait, "max admission queue wait before a 503")
	hedgeAfter := fs.Duration("hedge", 0, "fixed hedge trigger (0: adaptive p95, negative: off)")
	probePeriod := fs.Duration("probe", gateway.DefaultProbePeriod, "health probe interval (negative: off)")
	withMetrics := fs.Bool("metrics", true, "expose GET /v1/metrics")
	traceCap := fs.Int("trace", trace.DefaultCapacity, "recent-trace ring capacity for GET /v1/traces (0 disables)")
	auditDir := fs.String("audit-dir", "", "write a checksummed JSONL query audit log into this directory (empty: auditing off)")
	hotWindow := fs.Duration("hot-window", time.Minute, "hot-owner detection decay window")
	hotThreshold := fs.Int("hot-threshold", 0, "flag an owner queried this often within a decay window (0: off)")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn, error")
	logFormat := fs.String("log-format", "text", "log format: text or json")
	selfbench := fs.Int("selfbench", 0, "run N lookups against a self-contained demo fleet and exit")
	baseline := fs.String("baseline", "BENCH_gateway.json", "selfbench: append the latency snapshot to this file")
	benchShards := fs.Int("bench-shards", 3, "selfbench: demo fleet shard count")
	providers := fs.Int("providers", 50, "selfbench: demo index providers")
	// 128 owners keep the warm working set L1-resident so the warm phases
	// measure the lookup pipeline rather than DRAM stalls, while still
	// spreading identities over every shard of the demo fleet.
	owners := fs.Int("owners", 128, "selfbench: demo index owners")
	seed := fs.Int64("seed", 1, "selfbench: demo index seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := logx.New(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	cfg := gateway.Config{
		CacheSize:    *cacheSize,
		CacheTTL:     *cacheTTL,
		MaxInFlight:  *maxInFlight,
		QueueWait:    *queueWait,
		HedgeAfter:   *hedgeAfter,
		ProbePeriod:  *probePeriod,
		HotWindow:    *hotWindow,
		HotThreshold: *hotThreshold,
		Logger:       logger,
	}
	if *withMetrics {
		cfg.Registry = metrics.NewRegistry()
		metrics.RegisterRuntime(cfg.Registry)
		metrics.RegisterBuildInfo(cfg.Registry)
	}
	if *traceCap > 0 {
		cfg.Tracer = trace.New(*traceCap)
	}
	if *auditDir != "" {
		sink, err := audit.Open(*auditDir, audit.Options{Registry: cfg.Registry, Logger: logger})
		if err != nil {
			return fmt.Errorf("audit log: %w", err)
		}
		defer sink.Close()
		cfg.Audit = sink
	}

	if *selfbench > 0 {
		return runSelfbench(ctx, cfg, logger, out, selfbenchConfig{
			lookups: *selfbench, shards: *benchShards,
			providers: *providers, owners: *owners, seed: *seed,
			baseline: *baseline,
		})
	}

	shardURLs, err := parseShards(*shardsSpec)
	if err != nil {
		return err
	}
	cfg.Shards = shardURLs
	g, err := gateway.New(cfg)
	if err != nil {
		return err
	}
	defer g.Close()
	listener, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	replicas := 0
	for _, reps := range shardURLs {
		replicas += len(reps)
	}
	logger.Info("gateway up",
		slog.String("addr", "http://"+listener.Addr().String()),
		slog.Int("shards", len(shardURLs)),
		slog.Int("replicas", replicas),
		slog.Int("cache", *cacheSize),
		slog.Int("max_inflight", *maxInFlight))
	return serve(ctx, listener, g, logger)
}

// parseShards splits "r1,r2;r3" into per-shard replica URL lists.
func parseShards(spec string) ([][]string, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("no -shards given (example: -shards \"http://h1:8081;http://h2:8082\")")
	}
	var shards [][]string
	for k, group := range strings.Split(spec, ";") {
		var replicas []string
		for _, u := range strings.Split(group, ",") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
				return nil, fmt.Errorf("shard %d replica %q: want an http(s):// base URL", k, u)
			}
			replicas = append(replicas, u)
		}
		if len(replicas) == 0 {
			return nil, fmt.Errorf("shard %d has no replica URLs", k)
		}
		shards = append(shards, replicas)
	}
	return shards, nil
}

// serve runs the gateway HTTP server until ctx is cancelled, then drains
// in-flight requests for up to drainTimeout.
func serve(ctx context.Context, listener net.Listener, handler http.Handler, logger *slog.Logger) error {
	httpSrv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ErrorLog:          slog.NewLogLogger(logger.Handler(), slog.LevelWarn),
	}
	shutdownErr := make(chan error, 1)
	go func() {
		<-ctx.Done()
		logger.Info("shutting down", slog.Duration("drain_timeout", drainTimeout))
		drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		shutdownErr <- httpSrv.Shutdown(drainCtx)
	}()
	if err := httpSrv.Serve(listener); err != nil && err != http.ErrServerClosed {
		return err
	}
	if ctx.Err() != nil {
		if err := <-shutdownErr; err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
	}
	return nil
}

type selfbenchConfig struct {
	lookups   int
	shards    int
	providers int
	owners    int
	seed      int64
	baseline  string
}

// benchBatchSize is the owners-per-request size of the selfbench batch
// passes. 64 is large enough that per-request HTTP and cache-lock costs
// amortize visibly, small enough to stay under every batch cap.
const benchBatchSize = 64

// benchSnapshot is one appended entry of the BENCH_gateway.json history.
// The batch fields are pointers so entries written before the batched
// lookup path existed round-trip without growing spurious zero phases.
type benchSnapshot struct {
	Timestamp string      `json:"timestamp"`
	Shards    int         `json:"shards"`
	Providers int         `json:"providers"`
	Owners    int         `json:"owners"`
	Seed      int64       `json:"seed"`
	Lookups   int         `json:"lookups"`
	Cold      benchPhase  `json:"cold"`
	Warm      benchPhase  `json:"warm"`
	BatchSize int         `json:"batch_size,omitempty"`
	BatchCold *benchPhase `json:"batch_cold,omitempty"`
	BatchWarm *benchPhase `json:"batch_warm,omitempty"`
}

// benchPhase is one pass's latency distribution. Percentiles are recorded
// in nanoseconds: a warm cache hit — and even more so a warm batch row —
// completes in well under a microsecond, so the original whole-µs fields
// rounded warm percentiles down to 0. The µs keys are kept, now with
// fractional values derived from the ns fields, so old history entries
// and anything reading p50_us stay meaningful. QPS counts owners
// resolved per second, so single and batch phases compare directly.
type benchPhase struct {
	P50Nanos  int64   `json:"p50_ns"`
	P95Nanos  int64   `json:"p95_ns"`
	P99Nanos  int64   `json:"p99_ns"`
	P50Micros float64 `json:"p50_us"`
	P95Micros float64 `json:"p95_us"`
	P99Micros float64 `json:"p99_us"`
	QPS       float64 `json:"qps"`
}

// benchPhaseFrom encodes a pass: sort the per-request latencies, take
// nearest-rank percentiles at full ns resolution, and derive the legacy
// µs floats from them. ops is the owner-lookup count of the pass — equal
// to len(lat) for singles, len(lat)×batch size for batch passes — so QPS
// stays an owners-per-second figure either way. lat is sorted in place.
func benchPhaseFrom(lat []time.Duration, ops int, elapsed time.Duration) benchPhase {
	if len(lat) == 0 || elapsed <= 0 {
		return benchPhase{}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pick := func(p float64) time.Duration {
		idx := int(p * float64(len(lat)))
		if idx >= len(lat) {
			idx = len(lat) - 1
		}
		return lat[idx]
	}
	p50, p95, p99 := pick(0.50), pick(0.95), pick(0.99)
	return benchPhase{
		P50Nanos: p50.Nanoseconds(), P95Nanos: p95.Nanoseconds(), P99Nanos: p99.Nanoseconds(),
		P50Micros: float64(p50.Nanoseconds()) / 1e3,
		P95Micros: float64(p95.Nanoseconds()) / 1e3,
		P99Micros: float64(p99.Nanoseconds()) / 1e3,
		QPS:       float64(ops) / elapsed.Seconds(),
	}
}

// runSelfbench stands up a demo fleet — one loopback HTTP server per
// column shard of a deterministic demo index — and drives lookups through
// the full gateway stack, once with a cold cache (every lookup goes
// upstream) and once warm (every lookup is a cache hit). The resulting
// latency snapshot is appended to the baseline file.
func runSelfbench(ctx context.Context, cfg gateway.Config, logger *slog.Logger, out *os.File, bc selfbenchConfig) error {
	d, err := workload.GenerateZipf(workload.ZipfConfig{
		Providers: bc.providers, Owners: bc.owners, Exponent: 1.1, Seed: bc.seed,
	})
	if err != nil {
		return err
	}
	res, err := core.Construct(d.Matrix, d.Eps, core.Config{
		Policy: mathx.PolicyChernoff, Gamma: 0.9, Mode: core.ModeTrusted, Seed: bc.seed,
	})
	if err != nil {
		return err
	}
	parts, err := shard.Partition(res.Published, d.Names, bc.shards)
	if err != nil {
		return err
	}
	var servers []*http.Server
	defer func() {
		for _, s := range servers {
			_ = s.Close()
		}
	}()
	cfg.Shards = nil
	for _, srv := range parts {
		handler, err := httpapi.NewHandler(srv)
		if err != nil {
			return err
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: handler}
		go func() { _ = hs.Serve(l) }()
		servers = append(servers, hs)
		cfg.Shards = append(cfg.Shards, []string{"http://" + l.Addr().String()})
	}
	g, err := gateway.New(cfg)
	if err != nil {
		return err
	}
	defer g.Close()

	run := func() (benchPhase, error) {
		lat := make([]time.Duration, 0, bc.lookups)
		start := time.Now()
		for i := 0; i < bc.lookups; i++ {
			if err := ctx.Err(); err != nil {
				return benchPhase{}, err
			}
			owner := d.Names[i%len(d.Names)]
			t0 := time.Now()
			if _, err := g.Lookup(ctx, owner); err != nil {
				return benchPhase{}, fmt.Errorf("lookup %q: %w", owner, err)
			}
			lat = append(lat, time.Since(t0))
		}
		return benchPhaseFrom(lat, bc.lookups, time.Since(start)), nil
	}

	logger.Info("selfbench: cold pass", slog.Int("lookups", bc.lookups), slog.Int("shards", bc.shards))
	// Cold: more distinct owners than lookups may exist; every first
	// lookup of an owner misses. With lookups > owners, later iterations
	// hit — that is the realistic mixed profile, reported as "cold".
	cold, err := run()
	if err != nil {
		return err
	}
	logger.Info("selfbench: warm pass")
	warm, err := run()
	if err != nil {
		return err
	}

	// Batch passes run against a second gateway with the same config but a
	// fresh cache — the single passes left the first one fully warm, and
	// the batch cold pass must miss. Identical config keeps the single and
	// batch phases comparable: the batch speedup reported below is the
	// real amortization (one lock, one epoch load, one metrics update per
	// 64 owners), not a stripped-down gateway.
	g2, err := gateway.New(cfg)
	if err != nil {
		return err
	}
	defer g2.Close()
	// Cold runs lookups/64 batches so its miss ratio matches the singles
	// cold pass (the same owner set drawn once); warm runs lookups timed
	// calls so its sample count — and so its percentile resolution and
	// QPS stability — matches the singles warm pass. Batch windows are
	// precomputed over a wrapped name ring and the answer buffer is
	// reused, so the loop measures the gateway, not the harness.
	ring := append(append(make([]string, 0, len(d.Names)+benchBatchSize), d.Names...), d.Names[:min(benchBatchSize, len(d.Names))]...)
	answerBuf := make([]gateway.BatchAnswer, benchBatchSize)
	runBatch := func(batches int) (benchPhase, error) {
		if batches < 1 {
			batches = 1
		}
		lat := make([]time.Duration, 0, batches)
		start := time.Now()
		for b := 0; b < batches; b++ {
			if err := ctx.Err(); err != nil {
				return benchPhase{}, err
			}
			off := (b * benchBatchSize) % len(d.Names)
			end := off + benchBatchSize
			if end > len(ring) {
				off, end = 0, benchBatchSize
			}
			owners := ring[off:end]
			t0 := time.Now()
			answers := g2.LookupBatchInto(ctx, owners, answerBuf)
			for i := range answers {
				if answers[i].Err != nil {
					return benchPhase{}, fmt.Errorf("batch lookup %q: %w", answers[i].Owner, answers[i].Err)
				}
			}
			lat = append(lat, time.Since(t0))
		}
		return benchPhaseFrom(lat, batches*benchBatchSize, time.Since(start)), nil
	}
	logger.Info("selfbench: batch cold pass", slog.Int("batch", benchBatchSize))
	batchCold, err := runBatch(bc.lookups / benchBatchSize)
	if err != nil {
		return err
	}
	logger.Info("selfbench: batch warm pass")
	batchWarm, err := runBatch(bc.lookups)
	if err != nil {
		return err
	}

	snap := benchSnapshot{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Shards:    bc.shards, Providers: bc.providers, Owners: bc.owners,
		Seed: bc.seed, Lookups: bc.lookups, Cold: cold, Warm: warm,
		BatchSize: benchBatchSize, BatchCold: &batchCold, BatchWarm: &batchWarm,
	}
	if err := appendSnapshot(bc.baseline, snap); err != nil {
		return err
	}
	fmt.Fprintf(out, "gateway selfbench: %d lookups over %d shards\n", bc.lookups, bc.shards)
	printPhase := func(name string, p benchPhase) {
		fmt.Fprintf(out, "  %s: p50=%.1fus p95=%.1fus p99=%.1fus (%.0f qps)\n",
			name, p.P50Micros, p.P95Micros, p.P99Micros, p.QPS)
	}
	printPhase("cold", cold)
	printPhase("warm", warm)
	printPhase(fmt.Sprintf("batch-%d cold", benchBatchSize), batchCold)
	printPhase(fmt.Sprintf("batch-%d warm", benchBatchSize), batchWarm)
	if warm.QPS > 0 {
		fmt.Fprintf(out, "  batch warm speedup over sequential singles: %.1fx\n", batchWarm.QPS/warm.QPS)
	}
	fmt.Fprintf(out, "  snapshot appended to %s\n", bc.baseline)
	return nil
}

// appendSnapshot appends snap to the JSON array in path (creating it when
// missing), so the file holds the benchmark history.
func appendSnapshot(path string, snap benchSnapshot) error {
	var history []benchSnapshot
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &history); err != nil {
			return fmt.Errorf("%s holds invalid history: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	history = append(history, snap)
	buf, err := json.MarshalIndent(history, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
