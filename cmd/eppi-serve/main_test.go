package main

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/httpapi"
	"repro/internal/index"
	"repro/internal/mathx"
	"repro/internal/workload"
)

func TestLoadOrBuildDemo(t *testing.T) {
	srv, err := loadOrBuild("", 20, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if srv.Providers() != 20 || srv.Owners() != 8 {
		t.Fatalf("dims %dx%d", srv.Providers(), srv.Owners())
	}
}

func TestLoadOrBuildFromFile(t *testing.T) {
	// Build an index, export it, load through the serve path.
	d, err := workload.GenerateZipf(workload.ZipfConfig{Providers: 10, Owners: 5, Exponent: 1.1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Construct(d.Matrix, d.Eps, core.Config{
		Policy: mathx.PolicyChernoff, Gamma: 0.9, Mode: core.ModeTrusted, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := index.NewServer(res.Published, d.Names)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := srv.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "index.bin")
	if err := os.WriteFile(path, buf.Bytes(), 0o600); err != nil {
		t.Fatal(err)
	}
	loaded, err := loadOrBuild(path, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Providers() != 10 || loaded.Owners() != 5 {
		t.Fatalf("loaded dims %dx%d", loaded.Providers(), loaded.Owners())
	}
}

func TestServeEndToEnd(t *testing.T) {
	srv, err := loadOrBuild("", 10, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	handler, err := httpapi.NewHandler(srv)
	if err != nil {
		t.Fatal(err)
	}
	listener, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- serve(listener, handler, stop) }()

	client := httpapi.NewClient("http://"+listener.Addr().String(), nil)
	hz, err := client.Healthz()
	if err != nil {
		t.Fatal(err)
	}
	if hz.Providers != 10 || hz.Owners != 4 {
		t.Fatalf("healthz = %+v", hz)
	}
	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not stop")
	}
}

func TestLoadOrBuildErrors(t *testing.T) {
	if _, err := loadOrBuild(filepath.Join(t.TempDir(), "missing.bin"), 0, 0, 0); err == nil {
		t.Error("missing index file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.bin")
	if err := os.WriteFile(bad, []byte("garbage"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := loadOrBuild(bad, 0, 0, 0); err == nil {
		t.Error("garbage index file accepted")
	}
}
