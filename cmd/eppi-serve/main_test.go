package main

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/httpapi"
	"repro/internal/index"
	"repro/internal/mathx"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func TestLoadOrBuildDemo(t *testing.T) {
	srv, err := loadOrBuild("", 20, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if srv.Providers() != 20 || srv.Owners() != 8 {
		t.Fatalf("dims %dx%d", srv.Providers(), srv.Owners())
	}
}

func TestLoadOrBuildFromFile(t *testing.T) {
	// Build an index, export it, load through the serve path.
	d, err := workload.GenerateZipf(workload.ZipfConfig{Providers: 10, Owners: 5, Exponent: 1.1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Construct(d.Matrix, d.Eps, core.Config{
		Policy: mathx.PolicyChernoff, Gamma: 0.9, Mode: core.ModeTrusted, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := index.NewServer(res.Published, d.Names)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := srv.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "index.bin")
	if err := os.WriteFile(path, buf.Bytes(), 0o600); err != nil {
		t.Fatal(err)
	}
	loaded, err := loadOrBuild(path, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Providers() != 10 || loaded.Owners() != 5 {
		t.Fatalf("loaded dims %dx%d", loaded.Providers(), loaded.Owners())
	}
}

// startServe launches serve() on a loopback listener and returns the base
// URL, the cancel that triggers graceful shutdown, and the error channel.
func startServe(t *testing.T, handler http.Handler) (string, context.CancelFunc, chan error) {
	t.Helper()
	listener, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, listener, handler, slog.New(slog.NewTextHandler(io.Discard, nil))) }()
	return "http://" + listener.Addr().String(), cancel, done
}

func waitServe(t *testing.T, done chan error) {
	t.Helper()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not stop")
	}
}

func TestServeEndToEnd(t *testing.T) {
	srv, err := loadOrBuild("", 10, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	handler, err := httpapi.NewHandler(srv)
	if err != nil {
		t.Fatal(err)
	}
	base, cancel, done := startServe(t, handler)
	defer cancel()

	client := httpapi.NewClient(base, nil)
	hz, err := client.Healthz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if hz.Providers != 10 || hz.Owners != 4 {
		t.Fatalf("healthz = %+v", hz)
	}
	cancel()
	waitServe(t, done)
}

func TestServeMetricsEndpoint(t *testing.T) {
	// The wiring eppi-serve sets up with -metrics (the default): a registry
	// through WithMetrics instruments both the middleware and the index, and
	// /v1/metrics serves the exposition.
	srv, err := loadOrBuild("", 10, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	handler, err := httpapi.NewHandler(srv, httpapi.WithMetrics(metrics.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	base, cancel, done := startServe(t, handler)
	defer cancel()

	client := httpapi.NewClient(base, nil)
	if _, err := client.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		`eppi_http_requests_total{class="2xx",route="healthz"} 1`,
		"# TYPE eppi_http_request_seconds histogram",
		"# TYPE eppi_index_queries_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q:\n%s", want, text)
		}
	}
	cancel()
	waitServe(t, done)
}

func TestServeDrainsInflightRequests(t *testing.T) {
	// A request in flight when the signal arrives must complete (Shutdown
	// semantics), not be cut off as the old Close-based stop did.
	release := make(chan struct{})
	started := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release
		io.WriteString(w, "done")
	})
	base, cancel, done := startServe(t, mux)
	defer cancel()

	got := make(chan error, 1)
	go func() {
		resp, err := http.Get(base + "/slow")
		if err != nil {
			got <- err
			return
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err == nil && string(body) != "done" {
			err = io.ErrUnexpectedEOF
		}
		got <- err
	}()
	<-started
	cancel() // "signal" arrives while /slow is in flight
	time.Sleep(20 * time.Millisecond)
	close(release)
	if err := <-got; err != nil {
		t.Fatalf("in-flight request failed during shutdown: %v", err)
	}
	waitServe(t, done)
}

func TestLoadOrBuildErrors(t *testing.T) {
	if _, err := loadOrBuild(filepath.Join(t.TempDir(), "missing.bin"), 0, 0, 0); err == nil {
		t.Error("missing index file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.bin")
	if err := os.WriteFile(bad, []byte("garbage"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := loadOrBuild(bad, 0, 0, 0); err == nil {
		t.Error("garbage index file accepted")
	}
}
