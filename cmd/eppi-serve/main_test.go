package main

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/httpapi"
	"repro/internal/index"
	"repro/internal/mathx"
	"repro/internal/metrics"
	"repro/internal/shard"
	"repro/internal/workload"
)

func TestLoadOrBuildDemo(t *testing.T) {
	srv, rep, err := loadOrBuild("", "", 20, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if srv.Providers() != 20 || srv.Owners() != 8 {
		t.Fatalf("dims %dx%d", srv.Providers(), srv.Owners())
	}
	// The demo index audits itself, and the in-memory report must be
	// sealed (checksummed) so /v1/privacy clients can verify it.
	if rep == nil {
		t.Fatal("demo build has no privacy report")
	}
	if rep.Checksum == "" {
		t.Error("demo privacy report is not sealed")
	}
	if rep.Identities != 8 || rep.Providers != 20 {
		t.Errorf("report dims %dx%d", rep.Providers, rep.Identities)
	}
}

func TestLoadOrBuildFromFile(t *testing.T) {
	// Build an index, export it, load through the serve path.
	d, err := workload.GenerateZipf(workload.ZipfConfig{Providers: 10, Owners: 5, Exponent: 1.1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Construct(d.Matrix, d.Eps, core.Config{
		Policy: mathx.PolicyChernoff, Gamma: 0.9, Mode: core.ModeTrusted, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := index.NewServer(res.Published, d.Names)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := srv.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "index.bin")
	if err := os.WriteFile(path, buf.Bytes(), 0o600); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := loadOrBuild(path, "", 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Providers() != 10 || loaded.Owners() != 5 {
		t.Fatalf("loaded dims %dx%d", loaded.Providers(), loaded.Owners())
	}
}

// startServe launches serve() on a loopback listener and returns the base
// URL, the cancel that triggers graceful shutdown, and the error channel.
func startServe(t *testing.T, handler http.Handler) (string, context.CancelFunc, chan error) {
	t.Helper()
	listener, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, listener, handler, slog.New(slog.NewTextHandler(io.Discard, nil)), nil) }()
	return "http://" + listener.Addr().String(), cancel, done
}

func waitServe(t *testing.T, done chan error) {
	t.Helper()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not stop")
	}
}

func TestServeEndToEnd(t *testing.T) {
	srv, _, err := loadOrBuild("", "", 10, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	handler, err := httpapi.NewHandler(srv)
	if err != nil {
		t.Fatal(err)
	}
	base, cancel, done := startServe(t, handler)
	defer cancel()

	client := httpapi.NewClient(base, nil)
	hz, err := client.Healthz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if hz.Providers != 10 || hz.Owners != 4 {
		t.Fatalf("healthz = %+v", hz)
	}
	cancel()
	waitServe(t, done)
}

func TestServeMetricsEndpoint(t *testing.T) {
	// The wiring eppi-serve sets up with -metrics (the default): a registry
	// through WithMetrics instruments both the middleware and the index, and
	// /v1/metrics serves the exposition.
	srv, _, err := loadOrBuild("", "", 10, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	handler, err := httpapi.NewHandler(srv, httpapi.WithMetrics(metrics.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	base, cancel, done := startServe(t, handler)
	defer cancel()

	client := httpapi.NewClient(base, nil)
	if _, err := client.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		`eppi_http_requests_total{class="2xx",route="healthz"} 1`,
		"# TYPE eppi_http_request_seconds histogram",
		"# TYPE eppi_index_queries_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q:\n%s", want, text)
		}
	}
	cancel()
	waitServe(t, done)
}

func TestServeDrainsInflightRequests(t *testing.T) {
	// A request in flight when the signal arrives must complete (Shutdown
	// semantics), not be cut off as the old Close-based stop did.
	release := make(chan struct{})
	started := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release
		io.WriteString(w, "done")
	})
	base, cancel, done := startServe(t, mux)
	defer cancel()

	got := make(chan error, 1)
	go func() {
		resp, err := http.Get(base + "/slow")
		if err != nil {
			got <- err
			return
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err == nil && string(body) != "done" {
			err = io.ErrUnexpectedEOF
		}
		got <- err
	}()
	<-started
	cancel() // "signal" arrives while /slow is in flight
	time.Sleep(20 * time.Millisecond)
	close(release)
	if err := <-got; err != nil {
		t.Fatalf("in-flight request failed during shutdown: %v", err)
	}
	waitServe(t, done)
}

func TestLoadOrBuildDemoShard(t *testing.T) {
	// Two independent loads of the same demo shard agree (deterministic
	// construction), and the shards partition the full demo index.
	full, _, err := loadOrBuild("", "", 20, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for k := 0; k < 2; k++ {
		spec := []string{"0/2", "1/2"}[k]
		srv, _, err := loadOrBuild("", spec, 20, 8, 1)
		if err != nil {
			t.Fatal(err)
		}
		id, of, sharded := srv.ShardInfo()
		if !sharded || id != k || of != 2 {
			t.Fatalf("shard %s: ShardInfo = %d/%d (%v)", spec, id, of, sharded)
		}
		for _, name := range srv.Names() {
			want, err := full.Query(name)
			if err != nil {
				t.Fatal(err)
			}
			got, err := srv.Query(name)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("shard answer for %q differs from full index", name)
			}
		}
		total += srv.Owners()
	}
	if total != full.Owners() {
		t.Fatalf("shards cover %d owners, full index has %d", total, full.Owners())
	}
}

func TestLoadOrBuildFromManifestDir(t *testing.T) {
	// Export a shard set the way eppi-construct -shards does, then load
	// one shard through the serve path.
	full, _, err := loadOrBuild("", "", 12, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := shard.WriteSet(dir, full.PublishedMatrix(), full.Names(), 2); err != nil {
		t.Fatal(err)
	}
	srv, _, err := loadOrBuild(dir, "1/2", 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if id, of, sharded := srv.ShardInfo(); !sharded || id != 1 || of != 2 {
		t.Fatalf("ShardInfo = %d/%d (%v)", id, of, sharded)
	}
	// Wrong shard count and missing -shard are rejected.
	if _, _, err := loadOrBuild(dir, "0/3", 0, 0, 0); err == nil {
		t.Error("manifest with 2 shards served -shard 0/3")
	}
	if _, _, err := loadOrBuild(dir, "", 0, 0, 0); err == nil {
		t.Error("directory index loaded without -shard")
	}
}

func TestParseShardSpec(t *testing.T) {
	if k, of, err := parseShardSpec("1/3"); err != nil || k != 1 || of != 3 {
		t.Fatalf("parseShardSpec(1/3) = %d, %d, %v", k, of, err)
	}
	for _, bad := range []string{"", "x", "3/3", "-1/2", "1-2", "2"} {
		if _, _, err := parseShardSpec(bad); err == nil {
			t.Errorf("parseShardSpec(%q) accepted", bad)
		}
	}
}

func TestServeFinalSnapshotAfterDrain(t *testing.T) {
	// The final metrics snapshot is logged only after the drain finishes,
	// so its numbers include the last in-flight request.
	release := make(chan struct{})
	started := make(chan struct{})
	reg := metrics.NewRegistry()
	requests := reg.Counter("test_requests_total", "requests handled")
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release
		requests.Inc()
		io.WriteString(w, "done")
	})
	listener, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var logBuf syncBuffer
	logger := slog.New(slog.NewTextHandler(&logBuf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- serve(ctx, listener, mux, logger, reg) }()

	got := make(chan error, 1)
	go func() {
		resp, err := http.Get("http://" + listener.Addr().String() + "/slow")
		if err == nil {
			resp.Body.Close()
		}
		got <- err
	}()
	<-started
	cancel() // shutdown begins while /slow is in flight
	time.Sleep(20 * time.Millisecond)
	close(release)
	if err := <-got; err != nil {
		t.Fatalf("in-flight request failed: %v", err)
	}
	waitServe(t, done)
	logs := logBuf.String()
	if !strings.Contains(logs, "final metrics snapshot") {
		t.Fatalf("no final snapshot logged:\n%s", logs)
	}
	// The snapshot exposition (debug line) includes the counter the
	// in-flight request incremented — proof it was taken post-drain.
	if !strings.Contains(logs, "test_requests_total 1") {
		t.Fatalf("final snapshot missed the drained request's counter:\n%s", logs)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer for concurrent log writes.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestLoadOrBuildErrors(t *testing.T) {
	if _, _, err := loadOrBuild(filepath.Join(t.TempDir(), "missing.bin"), "", 0, 0, 0); err == nil {
		t.Error("missing index file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.bin")
	if err := os.WriteFile(bad, []byte("garbage"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadOrBuild(bad, "", 0, 0, 0); err == nil {
		t.Error("garbage index file accepted")
	}
}
