// Command eppi-serve runs the third-party locator service: it loads a
// previously exported index (or constructs one over a synthetic network
// when -index is omitted) and serves the HTTP query API.
//
// Usage:
//
//	eppi-serve -addr 127.0.0.1:8080 -index index.bin
//	eppi-serve -addr 127.0.0.1:8080 -providers 50 -owners 20   # demo index
//
// Endpoints: GET /v1/query?owner=…, GET /v1/stats, GET /v1/healthz,
// (unless -metrics=false) GET /v1/metrics in Prometheus text format,
// (unless -trace=0) GET /v1/traces serving recent request traces as
// Chrome trace-event JSON (load it in Perfetto; ?format=text for an
// indented tree), and (with -pprof) the net/http/pprof handlers under
// /debug/pprof/.
//
// Logs are structured (log/slog); -log-level and -log-format select
// verbosity and text/json rendering. Records emitted while serving a
// traced request carry its trace_id/span_id.
//
// SIGINT/SIGTERM shut the server down gracefully: in-flight requests are
// allowed to finish (bounded by a drain timeout) before the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/httpapi"
	"repro/internal/index"
	"repro/internal/logx"
	"repro/internal/mathx"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/workload"
)

// drainTimeout bounds how long graceful shutdown waits for in-flight
// requests after a signal.
const drainTimeout = 5 * time.Second

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "eppi-serve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("eppi-serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	indexPath := fs.String("index", "", "path to an index exported with WriteIndex (empty: build a demo index)")
	providers := fs.Int("providers", 50, "demo index: number of providers")
	owners := fs.Int("owners", 20, "demo index: number of owners")
	seed := fs.Int64("seed", 1, "demo index: random seed")
	withMetrics := fs.Bool("metrics", true, "expose GET /v1/metrics and instrument the index")
	traceCap := fs.Int("trace", trace.DefaultCapacity, "recent-trace ring capacity for GET /v1/traces (0 disables tracing)")
	withPprof := fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn, error")
	logFormat := fs.String("log-format", "text", "log format: text or json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := logx.New(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}

	srv, err := loadOrBuild(*indexPath, *providers, *owners, *seed)
	if err != nil {
		return err
	}
	var opts []httpapi.Option
	if *withMetrics {
		reg := metrics.NewRegistry()
		metrics.RegisterRuntime(reg)
		opts = append(opts, httpapi.WithMetrics(reg))
	}
	if *traceCap > 0 {
		opts = append(opts, httpapi.WithTracer(trace.New(*traceCap)))
	}
	handler, err := httpapi.NewHandler(srv, opts...)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.Handle("/", handler)
	if *withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	listener, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	logger.Info("locator service up",
		slog.String("addr", "http://"+listener.Addr().String()),
		slog.Int("providers", srv.Providers()),
		slog.Int("owners", srv.Owners()),
		slog.Bool("metrics", *withMetrics),
		slog.Int("trace_ring", *traceCap),
		slog.Bool("pprof", *withPprof))
	return serve(ctx, listener, mux, logger)
}

// serve runs the HTTP server until the listener closes or ctx is
// cancelled (SIGINT/SIGTERM in main). On cancellation the server drains
// in-flight requests for up to drainTimeout before forcing connections
// closed.
func serve(ctx context.Context, listener net.Listener, handler http.Handler, logger *slog.Logger) error {
	httpSrv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ErrorLog:          slog.NewLogLogger(logger.Handler(), slog.LevelWarn),
	}
	shutdownErr := make(chan error, 1)
	go func() {
		<-ctx.Done()
		logger.Info("shutting down", slog.Duration("drain_timeout", drainTimeout))
		drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		shutdownErr <- httpSrv.Shutdown(drainCtx)
	}()
	if err := httpSrv.Serve(listener); err != nil && err != http.ErrServerClosed {
		return err
	}
	if ctx.Err() != nil {
		// Shutdown path: surface a drain failure (timeout) if any.
		if err := <-shutdownErr; err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
	}
	return nil
}

func loadOrBuild(path string, providers, owners int, seed int64) (*index.Server, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("open index: %w", err)
		}
		defer f.Close()
		srv, err := index.Read(f)
		if err != nil {
			return nil, fmt.Errorf("load index %q: %w", path, err)
		}
		return srv, nil
	}
	d, err := workload.GenerateZipf(workload.ZipfConfig{
		Providers: providers, Owners: owners, Exponent: 1.1, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	res, err := core.Construct(d.Matrix, d.Eps, core.Config{
		Policy: mathx.PolicyChernoff, Gamma: 0.9, Mode: core.ModeTrusted, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	return index.NewServer(res.Published, d.Names)
}
