// Command eppi-serve runs the third-party locator service: it loads a
// previously exported index (or constructs one over a synthetic network
// when -index is omitted) and serves the HTTP query API.
//
// Usage:
//
//	eppi-serve -addr 127.0.0.1:8080 -index index.bin
//	eppi-serve -addr 127.0.0.1:8080 -providers 50 -owners 20   # demo index
//	eppi-serve -addr 127.0.0.1:8081 -shard 0/2                 # demo shard node
//	eppi-serve -addr 127.0.0.1:8081 -index shards/ -shard 0/2  # shard from manifest
//	eppi-serve -addr 127.0.0.1:8081 -epoch-dir store/ -shard 0/2  # hot-reloading node
//	eppi-serve -addr 127.0.0.1:8081 -epoch-dir cache/ -shard 0/2 \
//	           -epoch-origin http://origin:9000                  # mirrored node
//
// With -epoch-dir the node serves out of an epoch store written by
// eppi-construct -epoch-dir (internal/epoch): it loads the shard named by
// the store's CURRENT pointer and then polls (-epoch-poll) for newly
// published epochs, hot-swapping the served snapshot RCU-style — in-flight
// queries finish on the old index version, new queries see the new one, no
// restart. The active epoch is surfaced in /v1/healthz, /v1/metrics
// (eppi_epoch, eppi_epoch_swaps_total), the X-Eppi-Epoch response header,
// and epoch.reload spans. A corrupted CURRENT pointer or half-written
// epoch directory is rejected and the node keeps serving its current
// epoch.
//
// With -epoch-origin the node needs no shared storage at all: -epoch-dir
// becomes a local cache that a replication mirror (internal/replica)
// fills by polling an eppi-origin server — resumable ranged downloads,
// optionally bandwidth-capped (-epoch-bandwidth) and pruned
// (-epoch-keep), each epoch CRC-verified against its manifest before the
// atomic rename that lets the watcher see it. Boot blocks until the
// cache holds its first epoch. Replication health is surfaced as
// eppi_replica_bytes_total, eppi_replica_fetch_seconds,
// eppi_replica_failures_total and the eppi_replica_lag_epochs gauge,
// plus replica.sync/replica.fetch spans.
//
// With -shard k/of the process serves only column shard k of an
// of-way-partitioned index: identities are assigned to shards by a stable
// hash of the owner name (internal/shard), so any party can compute the
// owning shard with no coordination. -index may then name either a shard
// snapshot file or a directory holding a manifest written by
// eppi-construct -shards; without -index the demo index is built and
// partitioned in-process (deterministic under -seed, so independent
// processes agree on the shard contents). The shard identity is surfaced
// in /v1/healthz, /v1/metrics (eppi_shard_id / eppi_shard_count) and span
// attributes.
//
// Privacy telemetry: the node serves its epoch's ε-audit report at
// GET /v1/privacy (published as epochs/<n>/privacy.json by the
// constructing side; the demo index audits itself in-process), and
// -audit-dir enables the checksummed JSONL query audit log
// (internal/audit) recording per-query owner, shard, epoch, trace id
// and result cardinality.
//
// Endpoints: GET /v1/query?owner=…, GET /v1/search?q=…, GET /v1/stats,
// GET /v1/privacy, GET /v1/healthz, (unless -metrics=false) GET /v1/metrics in Prometheus
// text format, (unless -trace=0) GET /v1/traces serving recent request
// traces as Chrome trace-event JSON (load it in Perfetto; ?format=text
// for an indented tree), and (with -pprof) the net/http/pprof handlers
// under /debug/pprof/.
//
// Logs are structured (log/slog); -log-level and -log-format select
// verbosity and text/json rendering. Records emitted while serving a
// traced request carry its trace_id/span_id.
//
// SIGINT/SIGTERM shut the server down gracefully: in-flight requests are
// allowed to finish (bounded by a drain timeout) before the process
// exits, and only then — with no requests left to mutate counters — is
// the final metrics snapshot taken and logged.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/httpapi"
	"repro/internal/index"
	"repro/internal/logx"
	"repro/internal/mathx"
	"repro/internal/metrics"
	"repro/internal/privacy"
	"repro/internal/replica"
	"repro/internal/shard"
	"repro/internal/trace"
	"repro/internal/workload"
)

// drainTimeout bounds how long graceful shutdown waits for in-flight
// requests after a signal.
const drainTimeout = 5 * time.Second

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "eppi-serve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("eppi-serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	indexPath := fs.String("index", "", "path to an exported index file, or a shard-set directory with -shard (empty: build a demo index)")
	epochDir := fs.String("epoch-dir", "", "serve from an epoch store written by eppi-construct -epoch-dir, hot-swapping when a new epoch is published")
	epochPoll := fs.Duration("epoch-poll", epoch.DefaultPollPeriod, "how often to poll the epoch store's CURRENT pointer (±10% jitter per tick)")
	epochOrigin := fs.String("epoch-origin", "", "mirror epochs from this eppi-origin URL into -epoch-dir (the local cache) instead of relying on shared storage")
	epochSync := fs.Duration("epoch-sync", epoch.DefaultPollPeriod, "with -epoch-origin: how often to poll the origin for new epochs (±10% jitter per tick)")
	epochBandwidth := fs.Int64("epoch-bandwidth", 0, "with -epoch-origin: cap epoch downloads to this many bytes/second (0 = unlimited)")
	epochKeep := fs.Int("epoch-keep", 0, "with -epoch-origin: keep only the newest N epochs in the local cache (0 = keep all)")
	shardSpec := fs.String("shard", "", "serve one column shard, as \"k/of\" (e.g. 0/2)")
	providers := fs.Int("providers", 50, "demo index: number of providers")
	owners := fs.Int("owners", 20, "demo index: number of owners")
	seed := fs.Int64("seed", 1, "demo index: random seed")
	withMetrics := fs.Bool("metrics", true, "expose GET /v1/metrics and instrument the index")
	traceCap := fs.Int("trace", trace.DefaultCapacity, "recent-trace ring capacity for GET /v1/traces (0 disables tracing)")
	withPprof := fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	auditDir := fs.String("audit-dir", "", "write a checksummed JSONL query audit log into this directory (empty: auditing off)")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn, error")
	logFormat := fs.String("log-format", "text", "log format: text or json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := logx.New(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}

	// Registry and tracer come first: with -epoch-origin the replication
	// mirror reports into them before the index is even loadable.
	var reg *metrics.Registry
	var opts []httpapi.Option
	if *withMetrics {
		reg = metrics.NewRegistry()
		metrics.RegisterRuntime(reg)
		metrics.RegisterBuildInfo(reg)
		opts = append(opts, httpapi.WithMetrics(reg))
	}
	var tracer *trace.Tracer
	if *traceCap > 0 {
		tracer = trace.New(*traceCap)
		opts = append(opts, httpapi.WithTracer(tracer))
	}

	var srv *index.Server
	var rep *privacy.Report
	var servedEpoch uint64
	var mirror *replica.Mirror
	shardID, shardOf := 0, 1
	if *epochOrigin != "" && *epochDir == "" {
		return fmt.Errorf("-epoch-origin needs -epoch-dir naming the local mirror cache")
	}
	if *epochDir != "" {
		if *indexPath != "" {
			return fmt.Errorf("-epoch-dir and -index are mutually exclusive")
		}
		if *shardSpec != "" {
			if shardID, shardOf, err = parseShardSpec(*shardSpec); err != nil {
				return err
			}
		}
		if *epochOrigin != "" {
			// Pull-based replication: the mirror fills the local store from
			// the origin; everything below (Load, Watcher, RCU swap) then
			// works off local, verified files exactly as with shared
			// storage. Boot blocks until the cache holds its first epoch.
			mirror = &replica.Mirror{
				Origin:   *epochOrigin,
				Root:     *epochDir,
				Period:   *epochSync,
				Limit:    *epochBandwidth,
				Keep:     *epochKeep,
				Registry: reg,
				Tracer:   tracer,
				Logger:   logger,
			}
			if _, err := mirror.WaitReady(ctx); err != nil {
				return fmt.Errorf("mirror of %q: %w", *epochOrigin, err)
			}
		}
		if srv, servedEpoch, err = epoch.Load(*epochDir, shardID, shardOf); err != nil {
			return fmt.Errorf("epoch store %q: %w", *epochDir, err)
		}
		rep = loadEpochReport(logger, *epochDir, servedEpoch)
	} else if srv, rep, err = loadOrBuild(*indexPath, *shardSpec, *providers, *owners, *seed); err != nil {
		return err
	}
	if *auditDir != "" {
		sink, err := audit.Open(*auditDir, audit.Options{Registry: reg, Logger: logger})
		if err != nil {
			return fmt.Errorf("audit log: %w", err)
		}
		defer sink.Close()
		opts = append(opts, httpapi.WithAudit(sink))
	}
	handler, err := httpapi.NewHandler(srv, opts...)
	if err != nil {
		return err
	}
	handler.SetReport(rep)
	var watcherWG sync.WaitGroup
	if mirror != nil {
		// Keep pulling new epochs for as long as we serve; the Watcher
		// below notices each mirrored epoch through the local CURRENT
		// pointer, so the swap path is identical to shared storage.
		watcherWG.Add(1)
		go func() {
			defer watcherWG.Done()
			mirror.Run(ctx)
		}()
	}
	if *epochDir != "" {
		// Hot re-publication: poll the store and swap the served snapshot
		// RCU-style when CURRENT moves. In-flight requests finish on the
		// old epoch; a bad new epoch is rejected and the node stays put.
		w := &epoch.Watcher{
			Root:   *epochDir,
			Shard:  shardID,
			Of:     shardOf,
			Period: *epochPoll,
			Logger: logger,
			Tracer: tracer,
			OnSwap: func(next *index.Server, n uint64) error {
				if err := handler.Swap(next); err != nil {
					return err
				}
				// The report is advisory: a report-less epoch swaps in fine,
				// it just answers /v1/privacy with 404 until one appears.
				handler.SetReport(loadEpochReport(logger, *epochDir, n))
				return nil
			},
		}
		watcherWG.Add(1)
		go func() {
			defer watcherWG.Done()
			w.Run(ctx, servedEpoch)
		}()
		defer watcherWG.Wait()
	}
	mux := http.NewServeMux()
	mux.Handle("/", handler)
	if *withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	listener, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	up := []any{
		slog.String("addr", "http://"+listener.Addr().String()),
		slog.Int("providers", srv.Providers()),
		slog.Int("owners", srv.Owners()),
		slog.Bool("metrics", *withMetrics),
		slog.Int("trace_ring", *traceCap),
		slog.Bool("pprof", *withPprof),
	}
	if id, of, sharded := srv.ShardInfo(); sharded {
		up = append(up, slog.String("shard", fmt.Sprintf("%d/%d", id, of)))
	}
	if *epochDir != "" {
		up = append(up, slog.Uint64("epoch", servedEpoch), slog.String("epoch_dir", *epochDir))
	}
	if *epochOrigin != "" {
		up = append(up, slog.String("epoch_origin", *epochOrigin))
	}
	logger.Info("locator service up", up...)
	return serve(ctx, listener, mux, logger, reg)
}

// serve runs the HTTP server until the listener closes or ctx is
// cancelled (SIGINT/SIGTERM in main). On cancellation the server drains
// in-flight requests for up to drainTimeout before forcing connections
// closed. The final metrics snapshot is taken strictly AFTER the drain
// completes: scraping while requests were still finishing used to race
// the counters being incremented, so the "final" numbers could miss the
// last requests' worth of traffic.
func serve(ctx context.Context, listener net.Listener, handler http.Handler, logger *slog.Logger, reg *metrics.Registry) error {
	httpSrv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ErrorLog:          slog.NewLogLogger(logger.Handler(), slog.LevelWarn),
	}
	shutdownErr := make(chan error, 1)
	go func() {
		<-ctx.Done()
		logger.Info("shutting down", slog.Duration("drain_timeout", drainTimeout))
		drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		shutdownErr <- httpSrv.Shutdown(drainCtx)
	}()
	if err := httpSrv.Serve(listener); err != nil && err != http.ErrServerClosed {
		return err
	}
	if ctx.Err() != nil {
		// Shutdown path: surface a drain failure (timeout) if any.
		if err := <-shutdownErr; err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		// Drain is complete: no request can touch the registry anymore,
		// so this snapshot is consistent.
		logFinalSnapshot(logger, reg)
	}
	return nil
}

// logFinalSnapshot writes the post-drain metrics exposition to the log:
// a one-line summary at info, the full exposition at debug.
func logFinalSnapshot(logger *slog.Logger, reg *metrics.Registry) {
	if reg == nil {
		return
	}
	var buf bytes.Buffer
	if _, err := reg.WriteTo(&buf); err != nil {
		logger.Warn("final metrics snapshot failed", slog.Any("error", err))
		return
	}
	logger.Info("final metrics snapshot (post-drain)",
		slog.Int("exposition_bytes", buf.Len()))
	logger.Debug("final metrics exposition", slog.String("text", buf.String()))
}

// parseShardSpec parses "k/of" into a shard assignment.
func parseShardSpec(spec string) (k, of int, err error) {
	if n, _ := fmt.Sscanf(spec, "%d/%d", &k, &of); n != 2 || k < 0 || of < 1 || k >= of {
		return 0, 0, fmt.Errorf("bad -shard %q: want \"k/of\" with 0 <= k < of", spec)
	}
	return k, of, nil
}

// loadEpochReport fetches an epoch's privacy report. The report is
// advisory: a store published before reports existed serves fine, it
// just answers /v1/privacy with 404.
func loadEpochReport(logger *slog.Logger, root string, n uint64) *privacy.Report {
	rep, err := epoch.LoadReportAt(root, n)
	switch {
	case err == nil:
		return rep
	case errors.Is(err, epoch.ErrNoReport):
		logger.Info("epoch has no privacy report", slog.Uint64("epoch", n))
	default:
		// A present-but-broken report is worth a louder line: something
		// tampered with or corrupted the store.
		logger.Warn("privacy report rejected", slog.Uint64("epoch", n), slog.Any("error", err))
	}
	return nil
}

func loadOrBuild(path, shardSpec string, providers, owners int, seed int64) (*index.Server, *privacy.Report, error) {
	var shardID, shardOf int
	sharded := shardSpec != ""
	if sharded {
		var err error
		if shardID, shardOf, err = parseShardSpec(shardSpec); err != nil {
			return nil, nil, err
		}
	}
	if path != "" {
		info, err := os.Stat(path)
		if err != nil {
			return nil, nil, fmt.Errorf("open index: %w", err)
		}
		if info.IsDir() {
			srv, err := loadFromManifest(path, shardSpec, sharded, shardID, shardOf)
			return srv, nil, err
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, fmt.Errorf("open index: %w", err)
		}
		defer f.Close()
		srv, err := index.Read(f)
		if err != nil {
			return nil, nil, fmt.Errorf("load index %q: %w", path, err)
		}
		if sharded {
			id, of, ok := srv.ShardInfo()
			if !ok {
				return nil, nil, fmt.Errorf("index %q is unsharded but -shard %s was given", path, shardSpec)
			}
			if id != shardID || of != shardOf {
				return nil, nil, fmt.Errorf("index %q holds shard %d/%d, not the requested %s", path, id, of, shardSpec)
			}
		}
		// Exported index files carry only public state — no truth matrix,
		// so no report to audit against.
		return srv, nil, nil
	}
	d, err := workload.GenerateZipf(workload.ZipfConfig{
		Providers: providers, Owners: owners, Exponent: 1.1, Seed: seed,
	})
	if err != nil {
		return nil, nil, err
	}
	res, err := core.Construct(d.Matrix, d.Eps, core.Config{
		Policy: mathx.PolicyChernoff, Gamma: 0.9, Mode: core.ModeTrusted, Seed: seed,
	})
	if err != nil {
		return nil, nil, err
	}
	// The demo build has the truth matrix in hand, so it can audit
	// itself like a real publisher would; Sealed gives the in-memory
	// report the checksum clients verify on fetch. The operator detail
	// is discarded: a serving node must hold nothing it cannot serve.
	rep, _, err := privacy.Compute(privacy.Input{
		Truth: d.Matrix, Published: res.Published, Names: d.Names, Eps: d.Eps,
		Thresholds: res.Thresholds, Hidden: res.Hidden,
		Policy: mathx.PolicyChernoff.String(), Gamma: 0.9,
		Lambda: res.Lambda, Xi: res.Xi,
	})
	if err != nil {
		return nil, nil, err
	}
	if rep, err = privacy.Sealed(rep, 0); err != nil {
		return nil, nil, err
	}
	if !sharded {
		srv, err := index.NewServer(res.Published, d.Names)
		return srv, rep, err
	}
	// Construction is deterministic under seed (PR 3), so independent
	// eppi-serve processes with the same demo parameters agree on the
	// partition — no shared files needed to stand up a demo fleet. Every
	// shard serves the same full-index report, like epoch stores do.
	parts, err := shard.Partition(res.Published, d.Names, shardOf)
	if err != nil {
		return nil, nil, err
	}
	return parts[shardID], rep, nil
}

// loadFromManifest serves shard k/of out of a shard-set directory written
// by eppi-construct -shards (or shard.WriteSet): the manifest is read and
// checksum-verified, then the one requested shard file is loaded.
func loadFromManifest(dir, shardSpec string, sharded bool, shardID, shardOf int) (*index.Server, error) {
	if !sharded {
		return nil, fmt.Errorf("index %q is a directory: pick a shard with -shard k/of", dir)
	}
	man, err := shard.ReadManifest(dir)
	if err != nil {
		return nil, fmt.Errorf("read manifest in %q: %w", dir, err)
	}
	if man.Shards != shardOf {
		return nil, fmt.Errorf("manifest in %q has %d shards, -shard asked for %s", dir, man.Shards, shardSpec)
	}
	srv, err := man.LoadShard(dir, shardID)
	if err != nil {
		return nil, fmt.Errorf("load shard %d from %q: %w", shardID, dir, err)
	}
	return srv, nil
}
