package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-experiment", "fig6b", "-quick"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"fig6b", "e-PPI", "Pure-MPC", "completed in"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

// TestBaselineCarriesAuditAllocs runs a quick experiment with -baseline
// and checks the document records the audit-disabled query hot path at
// 0 allocs/op — the number make bench-baseline commits to
// BENCH_baseline.json.
func TestBaselineCarriesAuditAllocs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	var out bytes.Buffer
	if err := run([]string{"-experiment", "fig6b", "-quick", "-metrics=false",
		"-baseline", path}, &out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc baselineDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("baseline is not JSON: %v\n%s", err, raw)
	}
	if doc.AuditDisabledQueryAllocs != 0 {
		t.Errorf("audit_disabled_query_allocs = %v, want 0", doc.AuditDisabledQueryAllocs)
	}
	if len(doc.Experiments) != 1 || doc.Experiments[0].ID != "fig6b" {
		t.Errorf("experiments = %+v", doc.Experiments)
	}
	if !strings.Contains(string(raw), "audit_disabled_query_allocs") {
		t.Errorf("baseline JSON missing the allocs field:\n%s", raw)
	}
}

func TestRunCSVFormat(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-experiment", "fig6b", "-quick", "-format", "csv"}, &out); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(out.String(), "\n", 2)[0]
	if first != "parties,e-PPI,Pure-MPC" {
		t.Fatalf("csv header = %q", first)
	}
	if strings.Contains(out.String(), "completed in") {
		t.Error("csv output polluted with human text")
	}
}

func TestRunTCPTransport(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-experiment", "fig6a", "-quick", "-transport", "tcp"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fig6a") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-experiment", "nonsense"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-format", "xml"}, &out); err == nil {
		t.Error("unknown format accepted")
	}
	if err := run([]string{"-transport", "carrier-pigeon"}, &out); err == nil {
		t.Error("unknown transport accepted")
	}
	if err := run([]string{"-bogus-flag"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestSnapshotFanout(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-experiment", "searchcost", "-quick"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "== metrics snapshot ==") {
		t.Fatalf("no snapshot section:\n%s", s)
	}
	if !strings.Contains(s, `"eppi_index_query_fanout"`) {
		t.Errorf("snapshot missing fan-out histogram:\n%s", s)
	}
}

func TestSnapshotTransportBytes(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-experiment", "fig6a", "-quick"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		`"eppi_transport_bytes_total"`,
		`"eppi_secsum_phase_seconds"`,
		`"eppi_gmw_phase_seconds"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("snapshot missing %q", want)
		}
	}
}

func TestSnapshotDisabled(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-experiment", "searchcost", "-quick", "-metrics=false"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "metrics snapshot") {
		t.Error("-metrics=false still emitted a snapshot")
	}
	var csv bytes.Buffer
	if err := run([]string{"-experiment", "searchcost", "-quick", "-format", "csv"}, &csv); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(csv.String(), "metrics snapshot") {
		t.Error("csv output polluted with metrics snapshot")
	}
}

func TestRunTableExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-experiment", "ablation-c", "-quick"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "tolerates") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunProfilingFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	exec := filepath.Join(dir, "trace.out")
	var out bytes.Buffer
	err := run([]string{"-experiment", "fig6b", "-quick", "-metrics=false",
		"-cpuprofile", cpu, "-memprofile", mem, "-exectrace", exec}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem, exec} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Errorf("profile %s not written: %v", path, err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}
}

func TestRunProfilingBadPath(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-experiment", "fig6b", "-quick",
		"-cpuprofile", filepath.Join(t.TempDir(), "no-such-dir", "cpu.pprof")}, &out)
	if err == nil {
		t.Fatal("unwritable cpuprofile path accepted")
	}
}
