package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/workload"
)

// The -mpcbench workload: large enough that slab scheduling and circuit
// compilation are steady-state costs (identities span two full 64-lane
// slabs per batch, 16 batches), small enough to run in about a second.
// Prefix arithmetic and 32-bit mixing coins are the latency-oriented
// configuration the facade recommends for WAN links: log-depth circuits
// trade gates for rounds, which is exactly the trade the bit-sliced
// evaluator amortizes 64-wide. BatchSize 128 is a slab multiple, so the
// wide path runs with zero padded lanes.
const (
	mpcBenchProviders    = 64
	mpcBenchIdentities   = 2048
	mpcBenchCoordinators = 3
	mpcBenchBatch        = 128
	mpcBenchCoinBits     = 32
)

// mpcPhase is one evaluator's measurement in a BENCH_mpc.json entry.
// Seconds is the wall time of the CountBelow/Reveal construction stages —
// circuit compilation, triple preprocessing and protocol execution; the
// SecSumShare and publication stages are identical under both evaluators
// and reported separately via TotalSeconds. AndGateInstancesPerSec divides
// the scalar-equivalent workload — the AND gate instances the scalar
// evaluator executes for this exact construction — by that stage time, so
// the two phases' throughputs are directly comparable and their ratio is
// the speedup.
type mpcPhase struct {
	Seconds                float64 `json:"seconds"`
	TotalSeconds           float64 `json:"total_seconds"`
	AndGateInstancesPerSec float64 `json:"and_gate_instances_per_sec"`
}

// mpcEntry is one appended BENCH_mpc.json record.
type mpcEntry struct {
	Timestamp        string   `json:"timestamp"`
	Providers        int      `json:"providers"`
	Identities       int      `json:"identities"`
	Coordinators     int      `json:"coordinators"`
	Batch            int      `json:"batch"`
	CoinBits         int      `json:"coin_bits"`
	Arithmetic       string   `json:"arithmetic"`
	Workers          int      `json:"workers"`
	GoMaxProcs       int      `json:"gomaxprocs"`
	AndGateInstances uint64   `json:"and_gate_instances"`
	Scalar           mpcPhase `json:"scalar"`
	Wide             mpcPhase `json:"wide"`
	Speedup          float64  `json:"speedup"`
}

// runMPCBench times the secure construction of one fixed workload under
// the scalar and the bit-sliced wide GMW evaluators, verifies the two
// published matrices are bit-identical, and appends the measurement to the
// JSON history at path (the file `make bench-mpc` tracks and
// scripts/benchguard -mpc gates).
func runMPCBench(path string, seed int64, workers int, out io.Writer) error {
	rng := rand.New(rand.NewSource(seed))
	freqs := make([]int, mpcBenchIdentities)
	eps := make([]float64, mpcBenchIdentities)
	for j := range freqs {
		freqs[j] = 1 + rng.Intn(mpcBenchProviders)
		eps[j] = 0.3 + 0.6*rng.Float64()
	}
	d, err := workload.GenerateFixed(workload.FixedConfig{
		Providers:   mpcBenchProviders,
		Frequencies: freqs,
		Eps:         eps,
		Seed:        seed,
	})
	if err != nil {
		return err
	}
	cfg := core.Config{
		Policy:     mathx.PolicyChernoff,
		Gamma:      0.9,
		Mode:       core.ModeSecure,
		C:          mpcBenchCoordinators,
		BatchSize:  mpcBenchBatch,
		CoinBits:   mpcBenchCoinBits,
		Arithmetic: circuit.StylePrefix,
		Seed:       seed,
		Workers:    workers,
	}

	start := time.Now()
	scalar, err := core.Construct(d.Matrix, d.Eps, cfg)
	if err != nil {
		return fmt.Errorf("scalar construction: %w", err)
	}
	scalarTotal := time.Since(start).Seconds()
	scalarSec := scalar.Secure.MPCWall.Seconds()

	cfg.Wide = true
	start = time.Now()
	wide, err := core.Construct(d.Matrix, d.Eps, cfg)
	if err != nil {
		return fmt.Errorf("wide construction: %w", err)
	}
	wideTotal := time.Since(start).Seconds()
	wideSec := wide.Secure.MPCWall.Seconds()

	if !wide.Published.Equal(scalar.Published) {
		return fmt.Errorf("wide and scalar published matrices differ — benchmark void")
	}

	instances := uint64(scalar.Secure.CountBelowCircuit.AndGates + scalar.Secure.RevealCircuit.AndGates)
	entry := mpcEntry{
		Timestamp:        time.Now().UTC().Format(time.RFC3339),
		Providers:        mpcBenchProviders,
		Identities:       mpcBenchIdentities,
		Coordinators:     mpcBenchCoordinators,
		Batch:            mpcBenchBatch,
		CoinBits:         mpcBenchCoinBits,
		Arithmetic:       "prefix",
		Workers:          workers,
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		AndGateInstances: instances,
		Scalar:           mpcPhase{Seconds: scalarSec, TotalSeconds: scalarTotal, AndGateInstancesPerSec: float64(instances) / scalarSec},
		Wide:             mpcPhase{Seconds: wideSec, TotalSeconds: wideTotal, AndGateInstancesPerSec: float64(instances) / wideSec},
		Speedup:          scalarSec / wideSec,
	}
	if err := appendMPCEntry(path, entry); err != nil {
		return err
	}
	fmt.Fprintf(out, "mpcbench: %d AND instances over %dx%d (c=%d, batch=%d)\n",
		instances, mpcBenchProviders, mpcBenchIdentities, mpcBenchCoordinators, mpcBenchBatch)
	fmt.Fprintf(out, "  CountBelow/Reveal stage wall time:\n")
	fmt.Fprintf(out, "  scalar: %.3fs (%.3g inst/s, %.3fs total construct)\n", entry.Scalar.Seconds, entry.Scalar.AndGateInstancesPerSec, entry.Scalar.TotalSeconds)
	fmt.Fprintf(out, "  wide:   %.3fs (%.3g inst/s, %.3fs total construct)\n", entry.Wide.Seconds, entry.Wide.AndGateInstancesPerSec, entry.Wide.TotalSeconds)
	fmt.Fprintf(out, "  speedup: %.1fx (published matrices verified bit-identical)\n", entry.Speedup)
	return nil
}

// appendMPCEntry appends entry to the JSON array history at path, creating
// the file on first run.
func appendMPCEntry(path string, entry mpcEntry) error {
	var history []json.RawMessage
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &history); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	raw, err := json.Marshal(entry)
	if err != nil {
		return err
	}
	history = append(history, raw)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(history); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
