// Command eppi-bench regenerates the tables and figures of the ε-PPI
// paper's evaluation section.
//
// Usage:
//
//	eppi-bench -experiment fig4a [-seed 42] [-quick]
//	eppi-bench -experiment all
//
// Experiments: fig4a fig4b fig5a fig5b fig6a fig6a-model fig6b fig6c
// table2 searchcost all. Output is an aligned text rendering of the
// figure's series (one column per line in the paper's plot) or the table's
// rows. -quick shrinks the workloads for smoke runs; the default scale
// matches the paper (10,000 providers for Figures 4-5).
//
// Unless -metrics=false, text output ends with a "== metrics snapshot =="
// section: a JSON dump of the instrumentation gathered across the run
// (index query fan-out from searchcost, transport traffic and MPC phase
// timers from the Fig 6 protocol executions).
//
// Profiling: -cpuprofile, -memprofile and -exectrace write pprof CPU and
// heap profiles and a runtime/trace execution trace covering the whole
// run, for `go tool pprof` / `go tool trace` analysis of the protocol
// implementations at paper scale.
//
// -wide evaluates the secure-construction experiments with the bit-sliced
// 64-wide GMW evaluator (identical published results, different protocol
// cost). -mpcbench FILE runs the dedicated scalar-vs-wide construction
// benchmark and appends the measurement to FILE (see `make bench-mpc`).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/bitmat"
	"repro/internal/experiments"
	"repro/internal/index"
	"repro/internal/metrics"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "eppi-bench:", err)
		os.Exit(1)
	}
}

type renderer interface {
	Render(io.Writer)
	RenderCSV(io.Writer) error
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("eppi-bench", flag.ContinueOnError)
	experiment := fs.String("experiment", "all", "experiment id (fig4a..fig6c, table2, searchcost, ablation-mixing, ablation-c, all)")
	seed := fs.Int64("seed", 42, "random seed")
	quick := fs.Bool("quick", false, "reduced scale for smoke runs")
	format := fs.String("format", "text", "output format: text|csv")
	transportName := fs.String("transport", "inmem", "protocol transport for fig6a/fig6c: inmem|tcp")
	workers := fs.Int("workers", 0, "construction worker pool size (0 = NumCPU); results are identical at any value")
	wide := fs.Bool("wide", false, "run secure-construction experiments (fig6a/fig6c) with the bit-sliced 64-wide GMW evaluator")
	mpcBench := fs.String("mpcbench", "", "run the scalar-vs-wide MPC benchmark and append the measurement to this JSON history (skips experiments)")
	baseline := fs.String("baseline", "", "write per-experiment wall times as a JSON baseline to this file")
	withMetrics := fs.Bool("metrics", true, "append a JSON metrics snapshot to text output")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile to this file at exit")
	execTrace := fs.String("exectrace", "", "write a runtime/trace execution trace to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *execTrace != "" {
		f, err := os.Create(*execTrace)
		if err != nil {
			return fmt.Errorf("exectrace: %w", err)
		}
		defer f.Close()
		if err := rtrace.Start(f); err != nil {
			return fmt.Errorf("exectrace: %w", err)
		}
		defer rtrace.Stop()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "eppi-bench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "eppi-bench: memprofile:", err)
			}
		}()
	}
	if *format != "text" && *format != "csv" {
		return fmt.Errorf("unknown format %q", *format)
	}
	if *transportName != "inmem" && *transportName != "tcp" {
		return fmt.Errorf("unknown transport %q", *transportName)
	}
	if *mpcBench != "" {
		return runMPCBench(*mpcBench, *seed, *workers, out)
	}
	opts := experiments.Options{Seed: *seed, Quick: *quick, TCP: *transportName == "tcp", Workers: *workers, Wide: *wide}
	var reg *metrics.Registry
	if *withMetrics {
		reg = metrics.NewRegistry()
		opts.Metrics = reg
	}

	all := []struct {
		id  string
		gen func(experiments.Options) (renderer, error)
	}{
		{"fig4a", wrapFig(experiments.Fig4a)},
		{"fig4b", wrapFig(experiments.Fig4b)},
		{"fig5a", wrapFig(experiments.Fig5a)},
		{"fig5b", wrapFig(experiments.Fig5b)},
		{"fig6a", wrapFig(experiments.Fig6a)},
		{"fig6a-model", wrapFig(experiments.Fig6aModelled)},
		{"fig6b", wrapFig(experiments.Fig6b)},
		{"fig6c", wrapFig(experiments.Fig6c)},
		{"table2", wrapTable(experiments.Table2)},
		{"searchcost", wrapTable(experiments.SearchCost)},
		{"ablation-mixing", wrapTable(experiments.AblationMixing)},
		{"ablation-c", wrapTable(experiments.AblationC)},
		{"ablation-rebuild", wrapTable(experiments.AblationRebuild)},
		{"ablation-depth", wrapTable(experiments.AblationDepth)},
	}

	ran := false
	var timings []baselineEntry
	for _, exp := range all {
		if *experiment != "all" && *experiment != exp.id {
			continue
		}
		ran = true
		start := time.Now()
		result, err := exp.gen(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", exp.id, err)
		}
		timings = append(timings, baselineEntry{ID: exp.id, Seconds: time.Since(start).Seconds()})
		if *format == "csv" {
			if err := result.RenderCSV(out); err != nil {
				return fmt.Errorf("%s: %w", exp.id, err)
			}
			continue
		}
		result.Render(out)
		fmt.Fprintf(out, "[%s completed in %v]\n\n", exp.id, time.Since(start).Round(time.Millisecond))
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *experiment)
	}
	if *baseline != "" {
		allocs, err := auditDisabledQueryAllocs()
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		if err := writeBaseline(*baseline, baselineDoc{
			Seed:                     *seed,
			Quick:                    *quick,
			Workers:                  *workers,
			GoMaxProcs:               runtime.GOMAXPROCS(0),
			Transport:                *transportName,
			AuditDisabledQueryAllocs: allocs,
			Experiments:              timings,
		}); err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
	}
	// The snapshot rides along with the text rendering only: CSV output is
	// meant to be machine-piped per experiment and must stay schema-clean.
	if reg != nil && *format == "text" {
		if err := writeSnapshot(out, reg); err != nil {
			return err
		}
	}
	return nil
}

// baselineEntry is one experiment's wall time in a baseline document.
type baselineEntry struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
}

// baselineDoc is the schema of -baseline output (BENCH_baseline.json):
// enough run context to make later comparisons honest, plus the
// per-experiment wall times.
type baselineDoc struct {
	Seed       int64  `json:"seed"`
	Quick      bool   `json:"quick"`
	Workers    int    `json:"workers"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Transport  string `json:"transport"`
	// AuditDisabledQueryAllocs is the allocs/op of a served query with
	// auditing disabled (nil sink) — contract: 0. The benchmark form
	// lives in internal/audit (BenchmarkQueryAuditDisabled).
	AuditDisabledQueryAllocs float64         `json:"audit_disabled_query_allocs"`
	Experiments              []baselineEntry `json:"experiments"`
}

// auditDisabledQueryAllocs measures the audit-off query hot path the
// same way internal/audit's zero-alloc test does: a tiny index whose
// benchmark owner resolves to an empty column, queried with a nil
// *audit.Sink recording each result. testing.AllocsPerRun is callable
// outside tests, so the baseline file carries the number alongside the
// wall times it contextualizes.
func auditDisabledQueryAllocs() (float64, error) {
	m := bitmat.MustNew(8, 2)
	for r := 0; r < 8; r++ {
		m.Set(r, 1, true)
	}
	srv, err := index.NewServer(m, []string{"owner://empty", "owner://full"})
	if err != nil {
		return 0, err
	}
	var sink *audit.Sink
	ctx := context.Background()
	var queryErr error
	allocs := testing.AllocsPerRun(1000, func() {
		res, err := srv.QueryCtx(ctx, "owner://empty")
		if err != nil {
			queryErr = err
			return
		}
		sink.Record(audit.Entry{Route: "query", Owner: "owner://empty", Shard: -1, Epoch: 1, Results: len(res), Status: 200})
	})
	return allocs, queryErr
}

// writeBaseline writes doc as indented JSON.
func writeBaseline(path string, doc baselineDoc) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeSnapshot appends the registry contents gathered across the run —
// index query fan-out, transport traffic, MPC phase timers — as one JSON
// document under a text banner.
func writeSnapshot(out io.Writer, reg *metrics.Registry) error {
	snap := reg.Snapshot()
	if len(snap) == 0 {
		return nil // nothing instrumented (e.g. compile-only experiments)
	}
	fmt.Fprintln(out, "== metrics snapshot ==")
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

func wrapFig(gen func(experiments.Options) (*experiments.Figure, error)) func(experiments.Options) (renderer, error) {
	return func(o experiments.Options) (renderer, error) { return gen(o) }
}

func wrapTable(gen func(experiments.Options) (*experiments.TableResult, error)) func(experiments.Options) (renderer, error) {
	return func(o experiments.Options) (renderer, error) { return gen(o) }
}
