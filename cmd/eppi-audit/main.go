// Command eppi-audit is the offline privacy analyzer: it replays query
// audit logs (written by eppi-serve/eppi-gateway -audit-dir) against an
// epoch store's privacy reports, answering the operator's question the
// live metrics cannot — which high-privacy identities are being
// hammered, and is the published matrix still within its ε bound?
//
// Usage:
//
//	eppi-audit -logs audit/                          # query-load profile
//	eppi-audit -logs audit/ -epoch-dir store/        # joined with ε buckets
//	eppi-audit -logs audit/ -epoch-dir store/ -json  # machine-readable
//
// The analyzer streams every audit file in rotation order, tolerating
// corrupt lines (counted, skipped — a damaged log keeps every other
// record usable), and aggregates per-owner query counts, the epoch mix
// of the traffic, and per-route totals. With -epoch-dir it additionally
// loads and checksum-verifies every epoch's privacy.json, joins the
// top-queried identities with their ε decile from the operator-only
// detail document (privacy_detail.json — per-identity privacy demand
// is deliberately absent from the served report, so the join needs
// filesystem access to the store), flags high-privacy identities under
// heavy query load, and diffs the privacy posture across consecutive
// reports.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"repro/internal/audit"
	"repro/internal/epoch"
	"repro/internal/privacy"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "eppi-audit:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("eppi-audit", flag.ContinueOnError)
	logs := fs.String("logs", "", "audit log directory (as written by -audit-dir)")
	epochDir := fs.String("epoch-dir", "", "epoch store whose privacy reports to join against")
	top := fs.Int("top", 20, "how many top-queried identities to report")
	highBucket := fs.Int("high-bucket", 7, "ε decile at or above which an identity counts as high-privacy")
	asJSON := fs.Bool("json", false, "emit the analysis as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *logs == "" {
		return errors.New("no -logs directory given")
	}
	// Files() globs, which treats a missing directory as an empty log —
	// here that would silently report "0 records", so check up front.
	if _, err := os.Stat(*logs); err != nil {
		return fmt.Errorf("audit logs: %w", err)
	}
	a, err := analyze(*logs, *epochDir, *top, *highBucket)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(a)
	}
	render(out, a)
	return nil
}

// OwnerStat is the query-load profile of one identity.
type OwnerStat struct {
	Owner    string `json:"owner"`
	Queries  int    `json:"queries"`
	NotFound int    `json:"not_found"`
	// Bucket is the identity's ε decile label ("0.7-0.8"); empty when no
	// detail document covers the identity (or no -epoch-dir was given).
	Bucket string `json:"eps_bucket,omitempty"`
	// HighPrivacy marks identities at or above the -high-bucket decile:
	// the ones whose query pressure matters most.
	HighPrivacy bool `json:"high_privacy,omitempty"`
}

// EpochStat counts audit records by the epoch they were answered under.
type EpochStat struct {
	Epoch   uint64 `json:"epoch"`
	Entries int    `json:"entries"`
}

// ReportSummary is one epoch's privacy posture, as read (and
// checksum-verified) from the store.
type ReportSummary struct {
	Epoch          uint64  `json:"epoch"`
	Policy         string  `json:"policy"`
	SuccessRatio   float64 `json:"success_ratio"`
	ViolationCount int     `json:"violation_count"`
	MixRatio       float64 `json:"mix_ratio"`
}

// Analysis is the full output document of one eppi-audit run.
type Analysis struct {
	Entries int            `json:"entries"`
	Corrupt int            `json:"corrupt_lines"`
	Routes  map[string]int `json:"routes"`
	// Epochs is the traffic mix by served epoch (0: pre-epoch indexes).
	Epochs    []EpochStat `json:"epochs"`
	TopOwners []OwnerStat `json:"top_owners"`
	// HighPrivacyHot are the top-queried identities whose ε decile is at
	// or above the high-privacy threshold — the paper's common-identity
	// attack surface, observed as live traffic.
	HighPrivacyHot []OwnerStat `json:"high_privacy_hot,omitempty"`
	// Reports summarize every verified privacy report in the store,
	// oldest first; Diffs compare each consecutive pair.
	Reports []ReportSummary       `json:"reports,omitempty"`
	Diffs   []*privacy.DiffResult `json:"diffs,omitempty"`
	// SkippedEpochs lists store epochs whose report was missing or failed
	// verification — silent gaps would read as "all clear".
	SkippedEpochs []uint64 `json:"skipped_epochs,omitempty"`
}

// analyze streams the audit log and joins it with the store's reports.
func analyze(logs, epochDir string, top, highBucket int) (*Analysis, error) {
	a := &Analysis{Routes: map[string]int{}}
	type ownerAgg struct{ queries, notFound int }
	owners := map[string]*ownerAgg{}
	epochs := map[uint64]int{}
	st, err := audit.ScanDir(logs, func(e audit.Entry) error {
		a.Routes[e.Route]++
		epochs[e.Epoch]++
		if e.Route != "query" || e.Owner == "" {
			// Search patterns are exposure too, but they are substrings,
			// not identities — they cannot join against a report.
			return nil
		}
		o := owners[e.Owner]
		if o == nil {
			o = &ownerAgg{}
			owners[e.Owner] = o
		}
		o.queries++
		if e.Results < 0 {
			o.notFound++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	a.Entries = st.Lines
	a.Corrupt = st.Corrupt
	for n, c := range epochs {
		a.Epochs = append(a.Epochs, EpochStat{Epoch: n, Entries: c})
	}
	sort.Slice(a.Epochs, func(i, j int) bool { return a.Epochs[i].Epoch < a.Epochs[j].Epoch })

	ranked := make([]OwnerStat, 0, len(owners))
	for name, o := range owners {
		ranked = append(ranked, OwnerStat{Owner: name, Queries: o.queries, NotFound: o.notFound})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Queries != ranked[j].Queries {
			return ranked[i].Queries > ranked[j].Queries
		}
		return ranked[i].Owner < ranked[j].Owner
	})

	var reports []*privacy.Report
	var buckets map[string]uint8
	if epochDir != "" {
		if reports, buckets, a.SkippedEpochs, err = storeReports(epochDir); err != nil {
			return nil, err
		}
	}
	// buckets came from the newest epoch carrying a detail document: the
	// decile of an identity is a property of its ε, which does not move
	// between epochs unless the owner re-delegates with a new preference.
	for i := range ranked {
		if b, ok := buckets[ranked[i].Owner]; ok {
			ranked[i].Bucket = privacy.BucketLabel(int(b))
			ranked[i].HighPrivacy = int(b) >= highBucket
		}
	}
	if top < 0 {
		top = 0
	}
	if top > len(ranked) {
		top = len(ranked)
	}
	a.TopOwners = ranked[:top]
	for _, o := range ranked {
		if o.HighPrivacy {
			a.HighPrivacyHot = append(a.HighPrivacyHot, o)
		}
	}

	for i, r := range reports {
		a.Reports = append(a.Reports, ReportSummary{
			Epoch: r.Epoch, Policy: r.Policy, SuccessRatio: r.SuccessRatio,
			ViolationCount: r.ViolationCount, MixRatio: r.MixRatio,
		})
		if i > 0 {
			a.Diffs = append(a.Diffs, privacy.Diff(reports[i-1], r))
		}
	}
	return a, nil
}

// storeReports loads every verified privacy report of the store, oldest
// first, plus the identity→ε-decile map from the newest epoch carrying
// an operator detail document, and the epoch numbers it had to skip (no
// report, or a report failing its checksum). A store without detail
// files (published by a report-only publisher) yields a nil map — the
// join degrades to unlabelled owners rather than failing.
func storeReports(root string) ([]*privacy.Report, map[string]uint8, []uint64, error) {
	dirs, err := os.ReadDir(filepath.Join(root, epoch.EpochsDir))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("epoch store: %w", err)
	}
	var ns []uint64
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		n, err := strconv.ParseUint(d.Name(), 10, 64)
		if err != nil || n == 0 {
			continue // temp publish dirs, foreign files
		}
		ns = append(ns, n)
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	var reports []*privacy.Report
	var buckets map[string]uint8
	var skipped []uint64
	for _, n := range ns {
		rep, err := epoch.LoadReportAt(root, n)
		if err != nil {
			skipped = append(skipped, n)
			continue
		}
		reports = append(reports, rep)
		if det, err := epoch.LoadDetailAt(root, n); err == nil {
			buckets = det.IdentityBuckets
		}
	}
	return reports, buckets, skipped, nil
}

// render writes the human-readable form of the analysis.
func render(out io.Writer, a *Analysis) {
	fmt.Fprintf(out, "audit log: %d records (%d corrupt lines skipped)\n", a.Entries, a.Corrupt)
	routes := make([]string, 0, len(a.Routes))
	for r := range a.Routes {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	for _, r := range routes {
		fmt.Fprintf(out, "  route %-8s %d\n", r, a.Routes[r])
	}
	if len(a.Epochs) > 0 {
		fmt.Fprintln(out, "traffic by epoch:")
		for _, e := range a.Epochs {
			fmt.Fprintf(out, "  epoch %-6d %d records\n", e.Epoch, e.Entries)
		}
	}
	if len(a.TopOwners) > 0 {
		fmt.Fprintln(out, "top-queried identities:")
		for _, o := range a.TopOwners {
			mark := ""
			if o.HighPrivacy {
				mark = "  ** high privacy"
			}
			bucket := o.Bucket
			if bucket == "" {
				bucket = "-"
			}
			fmt.Fprintf(out, "  %-34s %5d queries (%d not found)  ε∈%s%s\n",
				o.Owner, o.Queries, o.NotFound, bucket, mark)
		}
	}
	if len(a.HighPrivacyHot) > 0 {
		fmt.Fprintf(out, "high-privacy identities under load: %d\n", len(a.HighPrivacyHot))
	}
	for _, r := range a.Reports {
		fmt.Fprintf(out, "epoch %d report: policy=%s success=%.4f violations=%d mix=%.3f\n",
			r.Epoch, r.Policy, r.SuccessRatio, r.ViolationCount, r.MixRatio)
	}
	for _, d := range a.Diffs {
		fmt.Fprintf(out, "epoch %d → %d: violations %d → %d, success %.4f → %.4f\n",
			d.FromEpoch, d.ToEpoch, d.Violations[0], d.Violations[1],
			d.SuccessRatio[0], d.SuccessRatio[1])
	}
	if len(a.SkippedEpochs) > 0 {
		fmt.Fprintf(out, "WARNING: %d epoch(s) without a verifiable privacy report: %v\n",
			len(a.SkippedEpochs), a.SkippedEpochs)
	}
}
