package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/audit"
	"repro/internal/bitmat"
	"repro/internal/epoch"
	"repro/internal/privacy"
)

// buildStore publishes two epochs with privacy reports over a hand-built
// 4-provider, 4-identity scenario (mirroring internal/privacy's hand
// case: "b" violates Equation 1 in epoch 1 and is repaired in epoch 2;
// "c" is a high-privacy true common).
func buildStore(t *testing.T) string {
	t.Helper()
	truth := bitmat.MustNew(4, 4)
	truth.Set(0, 0, true)
	truth.Set(0, 1, true)
	truth.Set(1, 1, true)
	for r := 0; r < 4; r++ {
		truth.Set(r, 2, true)
	}
	truth.Set(2, 3, true)
	pub := truth.Clone()
	pub.Set(3, 0, true)
	for r := 0; r < 4; r++ {
		pub.Set(r, 2, true)
		pub.Set(r, 3, true)
	}
	in := privacy.Input{
		Truth: truth, Published: pub,
		Names:      []string{"a", "b", "c", "d"},
		Eps:        []float64{0.4, 0.5, 0.95, 0.05},
		Thresholds: []uint64{5, 5, 3, 5},
		Hidden:     []bool{false, false, true, true},
		Policy:     "chernoff", Gamma: 0.9,
	}
	rep1, det1, err := privacy.Compute(in)
	if err != nil {
		t.Fatal(err)
	}
	// Epoch 2 repairs the violation: two false positives lift b's
	// achieved FP rate to its ε.
	pub2 := pub.Clone()
	pub2.Set(2, 1, true)
	pub2.Set(3, 1, true)
	in2 := in
	in2.Published = pub2
	rep2, det2, err := privacy.Compute(in2)
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	p := epoch.Publisher{Root: root}
	if _, err := p.PublishWithReport(pub, in.Names, 1, rep1, det1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.PublishWithReport(pub2, in.Names, 1, rep2, det2); err != nil {
		t.Fatal(err)
	}
	return root
}

func buildLogs(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	s, err := audit.Open(dir, audit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		s.Record(audit.Entry{Route: "query", Owner: "c", Shard: 0, Epoch: 1, Results: 4, Status: 200})
	}
	s.Record(audit.Entry{Route: "query", Owner: "c", Shard: 0, Epoch: 2, Results: 4, Status: 200})
	s.Record(audit.Entry{Route: "query", Owner: "a", Shard: 0, Epoch: 2, Results: 2, Status: 200})
	s.Record(audit.Entry{Route: "query", Owner: "owner://ghost", Epoch: 2, Results: -1, Status: 404})
	s.Record(audit.Entry{Route: "search", Owner: "a", Epoch: 2, Results: 1, Status: 200})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestAnalyzeJoinsLogsWithReports(t *testing.T) {
	store := buildStore(t)
	logs := buildLogs(t)
	a, err := analyze(logs, store, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Entries != 7 || a.Corrupt != 0 {
		t.Fatalf("entries = %d, corrupt = %d", a.Entries, a.Corrupt)
	}
	if a.Routes["query"] != 6 || a.Routes["search"] != 1 {
		t.Errorf("routes = %v", a.Routes)
	}
	if len(a.Epochs) != 2 || a.Epochs[0].Entries != 3 || a.Epochs[1].Entries != 4 {
		t.Errorf("epoch mix = %+v", a.Epochs)
	}
	if len(a.TopOwners) != 3 {
		t.Fatalf("top owners = %+v", a.TopOwners)
	}
	c := a.TopOwners[0]
	if c.Owner != "c" || c.Queries != 4 || c.Bucket != "0.9-1.0" || !c.HighPrivacy {
		t.Errorf("top owner = %+v", c)
	}
	ghost := a.TopOwners[2]
	if ghost.Owner != "owner://ghost" || ghost.NotFound != 1 || ghost.Bucket != "" {
		t.Errorf("ghost owner = %+v", ghost)
	}
	if len(a.HighPrivacyHot) != 1 || a.HighPrivacyHot[0].Owner != "c" {
		t.Errorf("high-privacy hot = %+v", a.HighPrivacyHot)
	}
	if len(a.Reports) != 2 || a.Reports[0].ViolationCount != 1 || a.Reports[1].ViolationCount != 0 {
		t.Errorf("reports = %+v", a.Reports)
	}
	if len(a.Diffs) != 1 || a.Diffs[0].FromEpoch != 1 || a.Diffs[0].ToEpoch != 2 {
		t.Fatalf("diffs = %+v", a.Diffs)
	}
	if a.Diffs[0].Violations != [2]int{1, 0} {
		t.Errorf("diff violations = %v", a.Diffs[0].Violations)
	}
	if len(a.SkippedEpochs) != 0 {
		t.Errorf("skipped = %v", a.SkippedEpochs)
	}
}

func TestAnalyzeWithoutStore(t *testing.T) {
	logs := buildLogs(t)
	a, err := analyze(logs, "", 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.TopOwners) != 2 || a.TopOwners[0].Bucket != "" {
		t.Errorf("top owners = %+v", a.TopOwners)
	}
	if len(a.Reports) != 0 || len(a.HighPrivacyHot) != 0 {
		t.Errorf("reports appeared without a store: %+v", a)
	}
}

func TestAnalyzeFlagsReportlessEpochs(t *testing.T) {
	store := buildStore(t)
	logs := buildLogs(t)
	// A third epoch published without a report must surface as a gap,
	// not silently vanish from the analysis.
	pub := bitmat.MustNew(4, 4)
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			pub.Set(r, c, true)
		}
	}
	p := epoch.Publisher{Root: store}
	if _, err := p.Publish(pub, []string{"a", "b", "c", "d"}, 1); err != nil {
		t.Fatal(err)
	}
	a, err := analyze(logs, store, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.SkippedEpochs) != 1 || a.SkippedEpochs[0] != 3 {
		t.Errorf("skipped = %v", a.SkippedEpochs)
	}
	if len(a.Reports) != 2 {
		t.Errorf("reports = %+v", a.Reports)
	}
}

func TestRunJSONAndText(t *testing.T) {
	store := buildStore(t)
	logs := buildLogs(t)
	var buf bytes.Buffer
	if err := run([]string{"-logs", logs, "-epoch-dir", store, "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var a Analysis
	if err := json.Unmarshal(buf.Bytes(), &a); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, buf.String())
	}
	if a.Entries != 7 {
		t.Errorf("entries = %d", a.Entries)
	}
	buf.Reset()
	if err := run([]string{"-logs", logs, "-epoch-dir", store}, &buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"7 records", "high privacy", "epoch 1 → 2", "violations 1 → 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text output missing %q:\n%s", want, text)
		}
	}
}

// TestAnalyzeNegativeTop pins the clamp: a negative -top must yield an
// empty top list, not a slice-bounds panic.
func TestAnalyzeNegativeTop(t *testing.T) {
	logs := buildLogs(t)
	a, err := analyze(logs, "", -5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.TopOwners) != 0 {
		t.Errorf("top owners = %+v, want none", a.TopOwners)
	}
}

// TestAnalyzeDetaillessStore covers a store whose publisher withheld
// the operator detail (e.g. a host-facing store): reports still
// summarize and diff, but the ε-decile join degrades to unlabelled
// owners instead of failing.
func TestAnalyzeDetaillessStore(t *testing.T) {
	truth := bitmat.MustNew(2, 2)
	truth.Set(0, 0, true)
	pub := truth.Clone()
	pub.Set(1, 0, true)
	rep, _, err := privacy.Compute(privacy.Input{
		Truth: truth, Published: pub,
		Names: []string{"a", "b"}, Eps: []float64{0.4, 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	p := epoch.Publisher{Root: root}
	if _, err := p.PublishWithReport(pub, []string{"a", "b"}, 1, rep, nil); err != nil {
		t.Fatal(err)
	}
	a, err := analyze(buildLogs(t), root, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Reports) != 1 {
		t.Fatalf("reports = %+v", a.Reports)
	}
	for _, o := range a.TopOwners {
		if o.Bucket != "" || o.HighPrivacy {
			t.Errorf("owner joined without a detail document: %+v", o)
		}
	}
}

func TestRunRequiresLogs(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Error("run without -logs accepted")
	}
	if err := run([]string{"-logs", filepath.Join(t.TempDir(), "missing")}, &bytes.Buffer{}); err == nil {
		t.Error("missing log dir accepted")
	}
}
