package main

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/mathx"
	"repro/internal/metrics"
	"repro/internal/replica"
	"repro/internal/workload"
)

func publishStore(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	d, err := workload.GenerateZipf(workload.ZipfConfig{Providers: 10, Owners: 8, Exponent: 1.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Construct(d.Matrix, d.Eps, core.Config{
		Policy: mathx.PolicyChernoff, Gamma: 0.9, Mode: core.ModeTrusted, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	pub := epoch.Publisher{Root: root}
	if _, err := pub.Publish(res.Published, d.Names, 1); err != nil {
		t.Fatal(err)
	}
	return root
}

func TestRunRejectsBadFlags(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, []string{"-log-level", "error"}); err == nil || !strings.Contains(err.Error(), "-store") {
		t.Fatalf("missing -store: %v", err)
	}
	if err := run(ctx, []string{"-store", "/does/not/exist", "-log-level", "error"}); err == nil {
		t.Fatal("nonexistent store accepted")
	}
}

// TestOriginServeEndToEnd exercises the wiring run() sets up: the
// replication API plus the metrics route on one listener, with graceful
// shutdown on cancel.
func TestOriginServeEndToEnd(t *testing.T) {
	store := publishStore(t)

	reg := metrics.NewRegistry()
	origin := replica.NewOrigin(store, replica.WithOriginMetrics(reg))
	mux := http.NewServeMux()
	mux.Handle("/", origin)
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = reg.WriteTo(w)
	})

	listener, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- serve(ctx, listener, mux, slog.New(slog.NewTextHandler(io.Discard, nil)))
	}()
	base := "http://" + listener.Addr().String()

	resp, err := http.Get(base + "/v1/epochs/current")
	if err != nil {
		t.Fatal(err)
	}
	var cur replica.CurrentResponse
	if err := json.NewDecoder(resp.Body).Decode(&cur); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || cur.Epoch != 1 {
		t.Fatalf("current = %d %+v", resp.StatusCode, cur)
	}

	resp, err = http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "eppi_origin_requests_total") {
		t.Fatalf("metrics route: status %d, body %q", resp.StatusCode, string(body))
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not stop")
	}
}
