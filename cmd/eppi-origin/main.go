// Command eppi-origin serves an epoch store read-only over HTTP — the
// publisher side of fleet replication. Point it at a store written by
// eppi-construct -epoch-dir; eppi-serve nodes anywhere mirror it with
// -epoch-origin http://host:port and hot-swap each epoch it publishes,
// with no shared filesystem between the machines.
//
// Usage:
//
//	eppi-construct -providers 100 -owners 50 -shards 2 -epoch-dir store/
//	eppi-origin -addr 127.0.0.1:9000 -store store/
//	eppi-serve -addr :8081 -epoch-dir cache0/ -epoch-origin http://127.0.0.1:9000 -shard 0/2
//
// The origin holds no state beyond the store directory: re-running
// eppi-construct against the same store publishes the next epoch, which
// mirrors pick up on their next poll. Served routes:
//
//	GET /v1/epochs/current        the store's active epoch number
//	GET /v1/epochs/{n}/manifest   an epoch's checksummed manifest
//	GET /v1/epochs/{n}/files/{f}  shard snapshots + privacy.json, ranged
//	GET /v1/healthz               liveness + current epoch
//	GET /v1/metrics               Prometheus exposition (unless -metrics=false)
//
// Only manifest-listed files and the public privacy report are served;
// the operator-only privacy_detail.json never leaves this host. Mirrors
// verify everything they download against the manifest, so the origin
// does not need to be trusted by the fleet any more than the store
// itself is.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/epoch"
	"repro/internal/logx"
	"repro/internal/metrics"
	"repro/internal/replica"
)

// drainTimeout bounds how long graceful shutdown waits for in-flight
// transfers after a signal.
const drainTimeout = 5 * time.Second

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "eppi-origin:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("eppi-origin", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:9000", "listen address")
	store := fs.String("store", "", "epoch store directory to serve (written by eppi-construct -epoch-dir)")
	withMetrics := fs.Bool("metrics", true, "expose GET /v1/metrics")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn, error")
	logFormat := fs.String("log-format", "text", "log format: text or json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := logx.New(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	if *store == "" {
		return fmt.Errorf("-store is required (the epoch store directory to serve)")
	}
	if _, err := os.Stat(*store); err != nil {
		return fmt.Errorf("epoch store: %w", err)
	}

	opts := []replica.OriginOption{replica.WithOriginLogger(logger)}
	var reg *metrics.Registry
	if *withMetrics {
		reg = metrics.NewRegistry()
		metrics.RegisterRuntime(reg)
		metrics.RegisterBuildInfo(reg)
		opts = append(opts, replica.WithOriginMetrics(reg))
	}
	origin := replica.NewOrigin(*store, opts...)
	mux := http.NewServeMux()
	mux.Handle("/", origin)
	if reg != nil {
		mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			w.WriteHeader(http.StatusOK)
			_, _ = reg.WriteTo(w)
		})
	}
	listener, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	cur, err := epoch.Current(*store)
	if err != nil {
		// An empty store is a fine origin to boot: mirrors poll until the
		// first publish lands.
		cur = 0
	}
	logger.Info("replication origin up",
		slog.String("addr", "http://"+listener.Addr().String()),
		slog.String("store", *store), slog.Uint64("epoch", cur),
		slog.Bool("metrics", reg != nil))
	return serve(ctx, listener, mux, logger)
}

// serve runs the HTTP server until ctx is cancelled, then drains
// in-flight transfers for up to drainTimeout.
func serve(ctx context.Context, listener net.Listener, handler http.Handler, logger *slog.Logger) error {
	httpSrv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ErrorLog:          slog.NewLogLogger(logger.Handler(), slog.LevelWarn),
	}
	shutdownErr := make(chan error, 1)
	go func() {
		<-ctx.Done()
		logger.Info("shutting down", slog.Duration("drain_timeout", drainTimeout))
		drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		shutdownErr <- httpSrv.Shutdown(drainCtx)
	}()
	if err := httpSrv.Serve(listener); err != nil && err != http.ErrServerClosed {
		return err
	}
	if ctx.Err() != nil {
		if err := <-shutdownErr; err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
	}
	return nil
}
