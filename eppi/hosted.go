package eppi

import (
	"context"
	"fmt"
	"io"
	"net/http"

	"repro/internal/epoch"
	"repro/internal/httpapi"
	"repro/internal/index"
	"repro/internal/shard"
)

// This file implements the deployment split of the paper's system model:
// the index is *constructed* inside the provider network but *hosted* by an
// untrusted third party. WriteIndex exports exactly what the host may see
// (the published matrix M' and identity labels — never β, thresholds or ε),
// and HostedService is the host-side query server.

// WriteIndex serializes the constructed index for transfer to a
// third-party host. It fails before ConstructPPI.
func (n *Network) WriteIndex(w io.Writer) (int64, error) {
	srv, err := n.serverHandle()
	if err != nil {
		return 0, err
	}
	return srv.WriteTo(w)
}

// WriteShardSet exports the constructed index as a column-sharded set for
// distributed hosting: dir receives one snapshot per shard plus a
// checksummed manifest (internal/shard). Identities are assigned to
// shards by a stable hash of the owner name, so any party — the gateway,
// a client, another provider — computes the owning shard without
// coordination. Each shard file carries only public state, exactly like
// WriteIndex. It fails before ConstructPPI.
func (n *Network) WriteShardSet(dir string, shards int) (*shard.Manifest, error) {
	srv, err := n.serverHandle()
	if err != nil {
		return nil, err
	}
	man, err := shard.WriteSet(dir, srv.PublishedMatrix(), srv.Names(), shards)
	if err != nil {
		return nil, fmt.Errorf("eppi: write shard set: %w", err)
	}
	return man, nil
}

// PublishEpoch exports the constructed index as the next epoch of the
// epoch store rooted at root (internal/epoch): the shard set lands under
// epochs/<n>/ and the store's CURRENT pointer is flipped atomically, so
// serving nodes watching the store hot-swap to the new version without a
// restart. The construction's ε-audit report travels with the shard set
// as epochs/<n>/privacy.json. Returns the epoch number published. Like
// WriteShardSet, only public state leaves the provider network: the
// report carries aggregates and a name+ε violation sample, never
// per-identity frequencies or the identity→ε-decile map — those stay
// inside the network behind PrivacyDetail. It fails before
// ConstructPPI.
func (n *Network) PublishEpoch(root string, shards int) (uint64, error) {
	srv, err := n.serverHandle()
	if err != nil {
		return 0, err
	}
	pub := epoch.Publisher{Root: root}
	e, err := pub.PublishWithReport(srv.PublishedMatrix(), srv.Names(), shards, n.PrivacyReport(), nil)
	if err != nil {
		return 0, fmt.Errorf("eppi: publish epoch: %w", err)
	}
	return e, nil
}

// HostedService is the untrusted locator service: it can answer QueryPPI
// but holds no private state and cannot perform AuthSearch.
type HostedService struct {
	server *index.Server
}

// ReadHostedService loads an index previously exported with WriteIndex.
func ReadHostedService(r io.Reader) (*HostedService, error) {
	srv, err := index.Read(r)
	if err != nil {
		return nil, fmt.Errorf("eppi: load hosted index: %w", err)
	}
	return &HostedService{server: srv}, nil
}

// Query implements QueryPPI on the hosted copy.
func (h *HostedService) Query(owner string) ([]int, error) {
	return h.server.Query(owner)
}

// QueryBatch implements the batched QueryPPI on the hosted copy: one
// snapshot answers every owner, misses are in-band (Found=false).
func (h *HostedService) QueryBatch(ctx context.Context, owners []string) []index.BatchItem {
	return h.server.QueryBatch(ctx, owners)
}

// Providers returns the provider count the index covers.
func (h *HostedService) Providers() int { return h.server.Providers() }

// Owners returns the number of indexed identities.
func (h *HostedService) Owners() int { return h.server.Owners() }

// Stats returns query-load statistics for the hosted service.
func (h *HostedService) Stats() index.Stats { return h.server.Stats() }

// Handler returns the HTTP locator API (GET /v1/query, /v1/stats,
// /v1/healthz) over this hosted index, ready for http.Serve.
func (h *HostedService) Handler() (http.Handler, error) {
	return httpapi.NewHandler(h.server)
}
