package eppi

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// Integration tests: the paper's guarantees verified end-to-end through
// the public API only — delegation, construction (both modes), hosted
// query, two-phase search, and the statistical privacy properties.

// buildRandomNetwork creates a network of m providers and nOwners owners
// with random delegations (freqHint records per owner) and the given ε.
func buildRandomNetwork(t *testing.T, m, nOwners, freqHint int, eps float64, seed int64) (*Network, map[string][]int) {
	t.Helper()
	names := make([]string, m)
	for i := range names {
		names[i] = fmt.Sprintf("p%03d", i)
	}
	net, err := NewNetwork(names)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	truth := make(map[string][]int, nOwners)
	for o := 0; o < nOwners; o++ {
		owner := fmt.Sprintf("owner-%03d", o)
		seen := map[int]bool{}
		for len(seen) < freqHint {
			p := rng.Intn(m)
			if seen[p] {
				continue
			}
			seen[p] = true
			rec := Record{Owner: owner, Kind: "rec", Body: fmt.Sprintf("%s@%d", owner, p)}
			if err := net.Delegate(p, rec, eps); err != nil {
				t.Fatal(err)
			}
			truth[owner] = append(truth[owner], p)
		}
	}
	return net, truth
}

// Recall must be perfect for every owner through the full stack.
func TestIntegrationRecallEveryOwner(t *testing.T) {
	net, truth := buildRandomNetwork(t, 60, 25, 3, 0.6, 1)
	if _, err := net.ConstructPPI(WithChernoff(0.9), WithSeed(2)); err != nil {
		t.Fatal(err)
	}
	net.GrantAll("s")
	s, err := net.NewSearcher("s")
	if err != nil {
		t.Fatal(err)
	}
	for owner, providers := range truth {
		res, err := s.Search(owner)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Records) != len(providers) {
			t.Fatalf("%s: found %d records, want %d", owner, len(res.Records), len(providers))
		}
	}
}

// The achieved noise must respect ε statistically: across many owners, the
// observed false-positive fraction must reach ε for ≥ γ-ish of them.
func TestIntegrationEpsilonGuarantee(t *testing.T) {
	const (
		m     = 400
		owner = 40
		eps   = 0.5
	)
	net, _ := buildRandomNetwork(t, m, owner, 4, eps, 3)
	if _, err := net.ConstructPPI(WithChernoff(0.9), WithSeed(4)); err != nil {
		t.Fatal(err)
	}
	net.GrantAll("s")
	s, err := net.NewSearcher("s")
	if err != nil {
		t.Fatal(err)
	}
	met := 0
	for o := 0; o < owner; o++ {
		res, err := s.Search(fmt.Sprintf("owner-%03d", o))
		if err != nil {
			t.Fatal(err)
		}
		if fpRateOK(res, eps) {
			met++
		}
	}
	if rate := float64(met) / owner; rate < 0.8 {
		t.Fatalf("only %.2f of owners met ε=%v, want >= 0.8 (γ=0.9)", rate, eps)
	}
}

// Secure and trusted constructions must agree on the public outcomes
// (thresholds, commons, β of revealed identities) for the same network.
func TestIntegrationSecureTrustedAgreement(t *testing.T) {
	netA, _ := buildRandomNetwork(t, 10, 6, 2, 0.5, 5)
	netB, _ := buildRandomNetwork(t, 10, 6, 2, 0.5, 5) // identical build
	repA, err := netA.ConstructPPI(WithChernoff(0.9), WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	repB, err := netB.ConstructPPI(WithChernoff(0.9), WithSecure(3), WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	if repA.CommonCount != repB.CommonCount {
		t.Fatalf("commons: trusted %d vs secure %d", repA.CommonCount, repB.CommonCount)
	}
	for i := range repA.Owners {
		a, b := repA.Owners[i], repB.Owners[i]
		if a.Owner != b.Owner {
			t.Fatalf("owner order differs: %s vs %s", a.Owner, b.Owner)
		}
		// Hidden sets may differ (independent mixing coins), but any owner
		// revealed by both must carry the identical β.
		if !a.Hidden && !b.Hidden && a.Beta != b.Beta {
			t.Fatalf("%s: trusted β=%v secure β=%v", a.Owner, a.Beta, b.Beta)
		}
	}
}

// The hosted service must behave identically to the in-network server.
func TestIntegrationHostedEquivalence(t *testing.T) {
	net, truth := buildRandomNetwork(t, 30, 10, 2, 0.4, 7)
	if _, err := net.ConstructPPI(WithSeed(8)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := net.WriteIndex(&buf); err != nil {
		t.Fatal(err)
	}
	host, err := ReadHostedService(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for owner := range truth {
		a, err := net.Query(owner)
		if err != nil {
			t.Fatal(err)
		}
		b, err := host.Query(owner)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: %v vs %v", owner, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: %v vs %v", owner, a, b)
			}
		}
	}
}

// The index is static: repeated queries are identical (the paper's
// repeated-attack resistance — an attacker gains nothing by re-querying).
func TestIntegrationIndexIsStatic(t *testing.T) {
	net, _ := buildRandomNetwork(t, 40, 8, 2, 0.7, 9)
	if _, err := net.ConstructPPI(WithSeed(10)); err != nil {
		t.Fatal(err)
	}
	first, err := net.Query("owner-000")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		again, err := net.Query("owner-000")
		if err != nil {
			t.Fatal(err)
		}
		if len(again) != len(first) {
			t.Fatal("query result changed across repetitions")
		}
		for k := range first {
			if again[k] != first[k] {
				t.Fatal("query result changed across repetitions")
			}
		}
	}
}

// Queries racing a re-construction must never observe torn state: each
// Query sees either the old or the new complete index.
func TestIntegrationConcurrentQueryAndReconstruct(t *testing.T) {
	net, _ := buildRandomNetwork(t, 30, 10, 2, 0.5, 11)
	if _, err := net.ConstructPPI(WithSeed(12)); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		defer close(errCh)
		for {
			select {
			case <-stop:
				return
			default:
			}
			got, err := net.Query("owner-000")
			if err != nil {
				errCh <- err
				return
			}
			if len(got) < 2 { // the 2 true providers must always appear
				errCh <- fmt.Errorf("torn query result: %v", got)
				return
			}
		}
	}()
	for i := 0; i < 10; i++ {
		if _, err := net.ConstructPPI(WithSeed(int64(100 + i))); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

// fpRateOK reports whether the observed noise fraction meets eps.
func fpRateOK(r *SearchResult, eps float64) bool {
	answered := r.TruePositives + r.FalsePositives
	if answered == 0 {
		return false
	}
	return float64(r.FalsePositives)/float64(answered) >= eps
}
