package eppi

import (
	"repro/internal/bitmat"
	"repro/internal/provider"
)

// buildMatrix assembles the private membership matrix M from each
// provider's local vector, in the given owner ordering.
func buildMatrix(providers []*provider.Provider, names []string) (*bitmat.Matrix, error) {
	mat, err := bitmat.New(len(providers), len(names))
	if err != nil {
		return nil, err
	}
	for i, p := range providers {
		if err := mat.SetRow(i, p.LocalVector(names)); err != nil {
			return nil, err
		}
	}
	return mat, nil
}
