// Package eppi is the public API of the ε-PPI library: a privacy
// preserving index (locator service) for information networks with
// quantitatively personalized privacy preservation, reproducing
//
//	Tang, Liu, Iyengar, Lee, Zhang — "ε-PPI: Locator Service in
//	Information Networks with Personalized Privacy Preservation",
//	ICDCS 2014.
//
// The system model has four roles: data owners delegate records (with a
// personal privacy degree ε ∈ [0,1]) to autonomous providers; the
// providers jointly construct a privacy preserving index; an untrusted
// locator service hosts the index and answers QueryPPI; searchers run the
// two-phase search (QueryPPI, then per-provider AuthSearch).
//
// A minimal session:
//
//	net, _ := eppi.NewNetwork([]string{"general", "oncology", "womens-health"})
//	net.Delegate(0, eppi.Record{Owner: "alice", Kind: "visit", Body: "..."}, 0.3)
//	net.Delegate(2, eppi.Record{Owner: "alice", Kind: "visit", Body: "..."}, 0.9)
//	report, _ := net.ConstructPPI(eppi.WithChernoff(0.9))
//	net.Grant(0, "dr-bob")        // ACLs are per provider
//	s, _ := net.NewSearcher("dr-bob")
//	res, _ := s.Search("alice")   // two-phase search
//
// Construction runs in trusted-aggregation mode by default (fast
// simulation); WithSecure(c) switches to the paper's real protocol —
// SecSumShare among all providers plus c-coordinator secure multi-party
// computation — which never reconstructs a hidden identity's frequency
// outside a circuit.
package eppi

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/mathx"
	"repro/internal/privacy"
	"repro/internal/provider"
	"repro/internal/searcher"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Record is one delegated personal record.
type Record struct {
	// Owner is the owner identity t_j (e.g. a patient identifier).
	Owner string
	// Kind labels the record type (e.g. "radiology").
	Kind string
	// Body is the record payload.
	Body string
}

// Policy selects a β-calculation policy (Section III-B of the paper).
type Policy = mathx.Policy

// The three β-calculation policies.
const (
	// PolicyBasic meets ε with ~50% probability (Equation 3).
	PolicyBasic = mathx.PolicyBasic
	// PolicyIncremented adds a configured Δ to the basic β (Equation 4).
	PolicyIncremented = mathx.PolicyIncremented
	// PolicyChernoff meets ε with configurable probability γ (Theorem 3.1).
	PolicyChernoff = mathx.PolicyChernoff
)

var (
	// ErrNotConstructed reports a query before ConstructPPI.
	ErrNotConstructed = errors.New("eppi: index not constructed yet")
	// ErrBadProvider reports an out-of-range provider id.
	ErrBadProvider = errors.New("eppi: provider id out of range")
	// ErrNoOwners reports construction over an empty network.
	ErrNoOwners = errors.New("eppi: no delegated records to index")
)

// Network is an information network of autonomous providers plus the
// third-party locator service built over them.
type Network struct {
	providers []*provider.Provider

	mu         sync.Mutex
	server     *index.Server
	report     *ConstructionReport
	privacy    *privacy.Report
	privacyDet *privacy.Detail
}

// NewNetwork creates a network with one provider per name.
func NewNetwork(providerNames []string) (*Network, error) {
	if len(providerNames) == 0 {
		return nil, errors.New("eppi: need at least one provider")
	}
	n := &Network{providers: make([]*provider.Provider, len(providerNames))}
	for i, name := range providerNames {
		n.providers[i] = provider.New(i, name)
	}
	return n, nil
}

// Providers returns the number of providers.
func (n *Network) Providers() int { return len(n.providers) }

// ProviderName returns the display name of provider id.
func (n *Network) ProviderName(id int) (string, error) {
	if id < 0 || id >= len(n.providers) {
		return "", fmt.Errorf("%w: %d", ErrBadProvider, id)
	}
	return n.providers[id].Name(), nil
}

// Delegate implements Delegate(⟨t_j, ε_j⟩, p_i): owner rec.Owner stores a
// record at provider id with privacy degree epsilon.
func (n *Network) Delegate(id int, rec Record, epsilon float64) error {
	if id < 0 || id >= len(n.providers) {
		return fmt.Errorf("%w: %d", ErrBadProvider, id)
	}
	return n.providers[id].Delegate(provider.Record{
		Owner: rec.Owner, Kind: rec.Kind, Body: rec.Body,
	}, epsilon)
}

// Grant authorizes a searcher at provider id's local access-control
// subsystem.
func (n *Network) Grant(id int, searcherID string) error {
	if id < 0 || id >= len(n.providers) {
		return fmt.Errorf("%w: %d", ErrBadProvider, id)
	}
	n.providers[id].Grant(searcherID)
	return nil
}

// GrantAll authorizes a searcher at every provider.
func (n *Network) GrantAll(searcherID string) {
	for _, p := range n.providers {
		p.Grant(searcherID)
	}
}

// Revoke removes a searcher's authorization at provider id.
func (n *Network) Revoke(id int, searcherID string) error {
	if id < 0 || id >= len(n.providers) {
		return fmt.Errorf("%w: %d", ErrBadProvider, id)
	}
	n.providers[id].Revoke(searcherID)
	return nil
}

// options collects construction parameters.
type options struct {
	cfg core.Config
}

// Option configures ConstructPPI.
type Option func(*options)

// WithPolicy selects a β policy with its parameter (Δ for
// PolicyIncremented, γ for PolicyChernoff; ignored for PolicyBasic).
func WithPolicy(p Policy, param float64) Option {
	return func(o *options) {
		o.cfg.Policy = p
		switch p {
		case mathx.PolicyIncremented:
			o.cfg.Delta = param
		case mathx.PolicyChernoff:
			o.cfg.Gamma = param
		}
	}
}

// WithChernoff selects the Chernoff policy with success ratio γ — the
// paper's recommended configuration.
func WithChernoff(gamma float64) Option {
	return WithPolicy(mathx.PolicyChernoff, gamma)
}

// WithSecure switches construction to the real distributed protocol with c
// coordinators (tolerating up to c−1 colluding providers).
func WithSecure(c int) Option {
	return func(o *options) {
		o.cfg.Mode = core.ModeSecure
		o.cfg.C = c
	}
}

// WithTCP makes the secure protocol run over real TCP loopback sockets
// instead of the in-memory transport.
func WithTCP() Option {
	return func(o *options) {
		o.cfg.NewNetwork = func(parties int) (transport.Network, error) {
			return transport.NewTCP(parties)
		}
	}
}

// WithBatchSize caps the identities per MPC circuit in secure mode; large
// owner sets are processed in sequential batches to bound memory.
func WithBatchSize(size int) Option {
	return func(o *options) { o.cfg.BatchSize = size }
}

// WithPrefixArithmetic compiles the secure mode's circuits with log-depth
// parallel-prefix adders: more AND gates but far fewer MPC communication
// rounds — the right trade on latency-bound (WAN) coordinator links.
func WithPrefixArithmetic() Option {
	return func(o *options) { o.cfg.Arithmetic = circuit.StylePrefix }
}

// WithWideMPC evaluates the secure mode's CountBelow/Reveal circuits with
// the bit-sliced 64-wide GMW evaluator: identities are packed 64 per
// machine word, so one AND-opening round serves 64 identities at once.
// The constructed index is bit-identical to the scalar evaluator; only
// protocol cost changes. Only meaningful with WithSecure.
func WithWideMPC() Option {
	return func(o *options) { o.cfg.Wide = true }
}

// WithOTPreprocessing replaces the secure mode's trusted triple dealer
// with the pairwise oblivious-transfer protocol — no trusted party at all,
// at the cost of public-key operations per AND gate. Only meaningful with
// WithSecure.
func WithOTPreprocessing() Option {
	return func(o *options) { o.cfg.Triples = core.TripleOT }
}

// WithSeed fixes the construction randomness for reproducible runs.
func WithSeed(seed int64) Option {
	return func(o *options) { o.cfg.Seed = seed }
}

// WithWorkers bounds the construction worker pool (β-threshold shards,
// concurrent MPC identity batches, publication shards). The default is
// runtime.NumCPU(); 1 forces the sequential path. The constructed index
// is bit-identical at any worker count for a given seed.
func WithWorkers(workers int) Option {
	return func(o *options) { o.cfg.Workers = workers }
}

// WithTracer records one span tree per ConstructPPI run into tr — the β
// phase, SecSumShare, each MPC batch (OT preprocessing and GMW phases
// included), mixing and publication. Export the result with
// trace.WriteChrome (Perfetto) or Tracer.WriteTrees.
func WithTracer(tr *trace.Tracer) Option {
	return func(o *options) { o.cfg.Tracer = tr }
}

// WithXi overrides the mixing fraction ξ (normally derived from the ε of
// common identities).
func WithXi(xi float64) Option {
	return func(o *options) { o.cfg.XiOverride = xi }
}

// OwnerReport describes one owner in the constructed index.
type OwnerReport struct {
	// Owner is the identity.
	Owner string
	// Epsilon is the effective privacy degree used (max over delegations).
	Epsilon float64
	// Beta is the final publishing probability β_j.
	Beta float64
	// Hidden reports whether the identity was published as common
	// (true common or mixed in).
	Hidden bool
}

// ConstructionReport summarises a ConstructPPI run.
type ConstructionReport struct {
	// Owners lists per-owner outcomes in index column order.
	Owners []OwnerReport
	// CommonCount is the number of true common identities.
	CommonCount int
	// Lambda is the applied mixing probability.
	Lambda float64
	// Xi is the targeted false fraction among published commons.
	Xi float64
	// SearchCost is the total published positives (query fan-out measure).
	SearchCost int
	// Secure carries protocol cost accounting for secure mode (nil
	// otherwise).
	Secure *core.SecureStats
}

// ConstructPPI runs the paper's ConstructPPI({ε_j}) operation over the
// current delegations and installs the resulting index in the locator
// service. It may be called again after further delegations; the new index
// replaces the old.
func (n *Network) ConstructPPI(opts ...Option) (*ConstructionReport, error) {
	o := options{cfg: core.Config{
		Policy: mathx.PolicyChernoff,
		Gamma:  0.9,
		Mode:   core.ModeTrusted,
	}}
	for _, opt := range opts {
		opt(&o)
	}

	// Owner universe: sorted union of all providers' delegated owners,
	// with per-owner ε = max over providers (strongest stated preference).
	epsByOwner := make(map[string]float64)
	for _, p := range n.providers {
		for _, owner := range p.Owners() {
			e, _ := p.Epsilon(owner)
			if cur, ok := epsByOwner[owner]; !ok || e > cur {
				epsByOwner[owner] = e
			}
		}
	}
	if len(epsByOwner) == 0 {
		return nil, ErrNoOwners
	}
	names := make([]string, 0, len(epsByOwner))
	for owner := range epsByOwner {
		names = append(names, owner)
	}
	sort.Strings(names)
	eps := make([]float64, len(names))
	for j, owner := range names {
		eps[j] = epsByOwner[owner]
	}

	truth, err := buildMatrix(n.providers, names)
	if err != nil {
		return nil, err
	}
	res, err := core.Construct(truth, eps, o.cfg)
	if err != nil {
		return nil, fmt.Errorf("construct: %w", err)
	}
	server, err := index.NewServer(res.Published, names)
	if err != nil {
		return nil, err
	}
	report := &ConstructionReport{
		CommonCount: res.CommonCount,
		Lambda:      res.Lambda,
		Xi:          res.Xi,
		SearchCost:  server.SearchCost(),
		Secure:      res.Secure,
	}
	for j, owner := range names {
		report.Owners = append(report.Owners, OwnerReport{
			Owner:   owner,
			Epsilon: eps[j],
			Beta:    res.Betas[j],
			Hidden:  res.Hidden[j],
		})
	}
	// Audit the artifact we just built: re-derive the achieved privacy
	// from M vs M' (internal/privacy). This runs where the truth matrix
	// legitimately lives — inside the provider network — and only the
	// aggregate report ever leaves with the published index; the
	// per-identity detail stays behind PrivacyDetail.
	priv, privDet, err := privacy.Compute(privacy.Input{
		Truth:      truth,
		Published:  res.Published,
		Names:      names,
		Eps:        eps,
		Thresholds: res.Thresholds,
		Hidden:     res.Hidden,
		Policy:     o.cfg.Policy.String(),
		Gamma:      o.cfg.Gamma,
		Lambda:     res.Lambda,
		Xi:         res.Xi,
	})
	if err != nil {
		return nil, fmt.Errorf("eppi: privacy audit: %w", err)
	}

	n.mu.Lock()
	n.server = server
	n.report = report
	n.privacy = priv
	n.privacyDet = privDet
	n.mu.Unlock()
	return report, nil
}

// PrivacyReport returns the ε-audit report of the last ConstructPPI run
// (nil before construction): the achieved false-positive protection of
// the published matrix measured against the configured policy. It is
// published alongside each epoch by PublishEpoch and served by nodes at
// GET /v1/privacy.
func (n *Network) PrivacyReport() *privacy.Report {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.privacy
}

// PrivacyDetail returns the operator-only companion of PrivacyReport
// (nil before construction): the identity→ε-decile map and the full
// per-identity violation records. Unlike the report it is never
// published by PublishEpoch — per-identity privacy demand must not
// leave the provider network — so an operator who wants it in their
// own store persists it explicitly with privacy.WriteDetailFile.
func (n *Network) PrivacyDetail() *privacy.Detail {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.privacyDet
}

// Query implements QueryPPI(t_j): the ids of providers that may hold the
// owner's records (including privacy noise).
func (n *Network) Query(owner string) ([]int, error) {
	srv, err := n.serverHandle()
	if err != nil {
		return nil, err
	}
	return srv.Query(owner)
}

// QueryBatch resolves many owners in one pass over the current index.
// Every item is answered by the same snapshot, and a missing owner is an
// in-band miss (Found=false) rather than an error, so one unknown
// identity does not fail the rest of the batch.
func (n *Network) QueryBatch(ctx context.Context, owners []string) ([]index.BatchItem, error) {
	srv, err := n.serverHandle()
	if err != nil {
		return nil, err
	}
	return srv.QueryBatch(ctx, owners), nil
}

// Report returns the last construction report (nil before ConstructPPI).
func (n *Network) Report() *ConstructionReport {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.report
}

// SearchResult is the outcome of a two-phase search.
type SearchResult struct {
	// Records are the owner's records found at authorized providers.
	Records []Record
	// Contacted is the number of providers returned by QueryPPI.
	Contacted int
	// TruePositives counts contacted providers that held records.
	TruePositives int
	// FalsePositives counts contacted noise providers.
	FalsePositives int
	// Denied counts providers that refused authorization.
	Denied int
}

// Searcher performs two-phase searches on behalf of a principal.
type Searcher struct {
	inner *searcher.Searcher
}

// NewSearcher creates a searcher bound to the current index.
func (n *Network) NewSearcher(id string) (*Searcher, error) {
	srv, err := n.serverHandle()
	if err != nil {
		return nil, err
	}
	inner, err := searcher.New(id, srv, n.providers)
	if err != nil {
		return nil, err
	}
	return &Searcher{inner: inner}, nil
}

// Search runs QueryPPI followed by AuthSearch at each candidate provider.
func (s *Searcher) Search(owner string) (*SearchResult, error) {
	res, err := s.inner.Search(owner)
	if err != nil {
		return nil, err
	}
	out := &SearchResult{
		Contacted:      res.Contacted,
		TruePositives:  res.TruePositives,
		FalsePositives: res.FalsePositives,
		Denied:         res.Denied,
	}
	for _, r := range res.Records {
		out.Records = append(out.Records, Record{Owner: r.Owner, Kind: r.Kind, Body: r.Body})
	}
	return out, nil
}

func (n *Network) serverHandle() (*index.Server, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.server == nil {
		return nil, ErrNotConstructed
	}
	return n.server, nil
}
