package eppi_test

import (
	"fmt"
	"log"

	"repro/eppi"
)

// The canonical session: delegate, construct, search.
func Example() {
	net, err := eppi.NewNetwork([]string{"p0", "p1", "p2", "p3", "p4", "p5", "p6", "p7"})
	if err != nil {
		log.Fatal(err)
	}
	if err := net.Delegate(1, eppi.Record{Owner: "alice", Kind: "visit", Body: "chart"}, 0.5); err != nil {
		log.Fatal(err)
	}
	if err := net.Delegate(4, eppi.Record{Owner: "alice", Kind: "visit", Body: "chart"}, 0.5); err != nil {
		log.Fatal(err)
	}
	if _, err := net.ConstructPPI(eppi.WithChernoff(0.9), eppi.WithSeed(1)); err != nil {
		log.Fatal(err)
	}
	net.GrantAll("dr")
	s, err := net.NewSearcher("dr")
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Search("alice")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("records found: %d (recall is always 100%%)\n", len(res.Records))
	// Output:
	// records found: 2 (recall is always 100%)
}

// Privacy degrees are per owner: ε=0 publishes the truthful provider
// list, larger ε buys more obscuring noise.
func ExampleNetwork_ConstructPPI() {
	names := make([]string, 12)
	for i := range names {
		names[i] = fmt.Sprintf("p%d", i)
	}
	net, err := eppi.NewNetwork(names)
	if err != nil {
		log.Fatal(err)
	}
	if err := net.Delegate(0, eppi.Record{Owner: "open"}, 0); err != nil {
		log.Fatal(err)
	}
	for _, p := range []int{2, 7} {
		if err := net.Delegate(p, eppi.Record{Owner: "private"}, 0.6); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := net.ConstructPPI(eppi.WithChernoff(0.9), eppi.WithSeed(2)); err != nil {
		log.Fatal(err)
	}
	open, _ := net.Query("open")
	private, _ := net.Query("private")
	fmt.Printf("open (ε=0)      → %d provider listed (the truth)\n", len(open))
	fmt.Printf("private (ε=0.6) → noise added: %v\n", len(private) > 2)
	// Output:
	// open (ε=0)      → 1 provider listed (the truth)
	// private (ε=0.6) → noise added: true
}
