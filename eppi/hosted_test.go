package eppi

import (
	"bytes"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestWriteIndexBeforeConstruct(t *testing.T) {
	net := buildHospitalNetwork(t)
	var buf bytes.Buffer
	if _, err := net.WriteIndex(&buf); !errors.Is(err, ErrNotConstructed) {
		t.Fatalf("error = %v", err)
	}
}

func TestHostedServiceRoundTrip(t *testing.T) {
	net := buildHospitalNetwork(t)
	if _, err := net.ConstructPPI(WithSeed(21)); err != nil {
		t.Fatal(err)
	}
	want, err := net.Query("carol")
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	n, err := net.WriteIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || n != int64(buf.Len()) {
		t.Fatalf("WriteIndex wrote %d, buffer %d", n, buf.Len())
	}

	host, err := ReadHostedService(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if host.Providers() != net.Providers() || host.Owners() != 3 {
		t.Fatalf("host dims %d/%d", host.Providers(), host.Owners())
	}
	got, err := host.Query("carol")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("hosted query %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hosted query %v, want %v", got, want)
		}
	}
	if st := host.Stats(); st.Queries != 1 {
		t.Fatalf("host stats %+v", st)
	}
	if _, err := host.Query("nobody"); err == nil {
		t.Fatal("unknown owner accepted by host")
	}
}

func TestHostedServiceHTTPHandler(t *testing.T) {
	net := buildHospitalNetwork(t)
	if _, err := net.ConstructPPI(WithSeed(22)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := net.WriteIndex(&buf); err != nil {
		t.Fatal(err)
	}
	host, err := ReadHostedService(&buf)
	if err != nil {
		t.Fatal(err)
	}
	handler, err := host.Handler()
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	resp2, err := ts.Client().Get(ts.URL + "/v1/query?owner=carol")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Fatalf("query status %d", resp2.StatusCode)
	}
}

func TestReadHostedServiceGarbage(t *testing.T) {
	if _, err := ReadHostedService(strings.NewReader("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestWriteShardSet(t *testing.T) {
	net := buildHospitalNetwork(t)
	dir := t.TempDir()
	if _, err := net.WriteShardSet(dir, 2); !errors.Is(err, ErrNotConstructed) {
		t.Fatalf("pre-construction error = %v", err)
	}
	if _, err := net.ConstructPPI(WithSeed(21)); err != nil {
		t.Fatal(err)
	}
	man, err := net.WriteShardSet(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if man.Shards != 2 || man.Owners != 3 {
		t.Fatalf("manifest = %+v", man)
	}
	if err := man.Verify(dir); err != nil {
		t.Fatalf("fresh shard set fails verification: %v", err)
	}
	// Every owner answers identically from its shard.
	owners := 0
	for k := 0; k < man.Shards; k++ {
		srv, err := man.LoadShard(dir, k)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range srv.Names() {
			want, err := net.Query(name)
			if err != nil {
				t.Fatal(err)
			}
			got, err := srv.Query(name)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("shard %d answer for %q differs", k, name)
			}
			owners++
		}
	}
	if owners != 3 {
		t.Fatalf("shards cover %d owners, want 3", owners)
	}
}
