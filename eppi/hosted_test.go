package eppi

import (
	"bytes"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestWriteIndexBeforeConstruct(t *testing.T) {
	net := buildHospitalNetwork(t)
	var buf bytes.Buffer
	if _, err := net.WriteIndex(&buf); !errors.Is(err, ErrNotConstructed) {
		t.Fatalf("error = %v", err)
	}
}

func TestHostedServiceRoundTrip(t *testing.T) {
	net := buildHospitalNetwork(t)
	if _, err := net.ConstructPPI(WithSeed(21)); err != nil {
		t.Fatal(err)
	}
	want, err := net.Query("carol")
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	n, err := net.WriteIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || n != int64(buf.Len()) {
		t.Fatalf("WriteIndex wrote %d, buffer %d", n, buf.Len())
	}

	host, err := ReadHostedService(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if host.Providers() != net.Providers() || host.Owners() != 3 {
		t.Fatalf("host dims %d/%d", host.Providers(), host.Owners())
	}
	got, err := host.Query("carol")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("hosted query %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hosted query %v, want %v", got, want)
		}
	}
	if st := host.Stats(); st.Queries != 1 {
		t.Fatalf("host stats %+v", st)
	}
	if _, err := host.Query("nobody"); err == nil {
		t.Fatal("unknown owner accepted by host")
	}
}

func TestHostedServiceHTTPHandler(t *testing.T) {
	net := buildHospitalNetwork(t)
	if _, err := net.ConstructPPI(WithSeed(22)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := net.WriteIndex(&buf); err != nil {
		t.Fatal(err)
	}
	host, err := ReadHostedService(&buf)
	if err != nil {
		t.Fatal(err)
	}
	handler, err := host.Handler()
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	resp2, err := ts.Client().Get(ts.URL + "/v1/query?owner=carol")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Fatalf("query status %d", resp2.StatusCode)
	}
}

func TestReadHostedServiceGarbage(t *testing.T) {
	if _, err := ReadHostedService(strings.NewReader("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
}
