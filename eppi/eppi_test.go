package eppi

import (
	"errors"
	"testing"

	"repro/internal/trace"
)

// buildHospitalNetwork assembles a small HIE-style network used across the
// API tests.
func buildHospitalNetwork(t *testing.T) *Network {
	t.Helper()
	net, err := NewNetwork([]string{"general", "oncology", "womens-health", "county", "childrens"})
	if err != nil {
		t.Fatal(err)
	}
	delegations := []struct {
		provider int
		owner    string
		eps      float64
	}{
		{0, "alice", 0.3},
		{2, "alice", 0.9}, // sensitive visit: stronger preference wins
		{1, "bob", 0.5},
		{0, "carol", 0.2},
		{1, "carol", 0.2},
		{3, "carol", 0.2},
	}
	for _, d := range delegations {
		if err := net.Delegate(d.provider, Record{Owner: d.owner, Kind: "visit", Body: "notes"}, d.eps); err != nil {
			t.Fatal(err)
		}
	}
	return net
}

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(nil); err == nil {
		t.Error("empty network accepted")
	}
	net, err := NewNetwork([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if net.Providers() != 2 {
		t.Errorf("Providers = %d", net.Providers())
	}
	name, err := net.ProviderName(1)
	if err != nil || name != "b" {
		t.Errorf("ProviderName = %q, %v", name, err)
	}
	if _, err := net.ProviderName(5); !errors.Is(err, ErrBadProvider) {
		t.Errorf("out-of-range name error = %v", err)
	}
}

func TestDelegateValidation(t *testing.T) {
	net, err := NewNetwork([]string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Delegate(3, Record{Owner: "x"}, 0.5); !errors.Is(err, ErrBadProvider) {
		t.Errorf("bad provider error = %v", err)
	}
	if err := net.Delegate(0, Record{Owner: ""}, 0.5); err == nil {
		t.Error("empty owner accepted")
	}
	if err := net.Grant(9, "s"); !errors.Is(err, ErrBadProvider) {
		t.Error("Grant out of range accepted")
	}
	if err := net.Revoke(9, "s"); !errors.Is(err, ErrBadProvider) {
		t.Error("Revoke out of range accepted")
	}
}

func TestQueryBeforeConstruct(t *testing.T) {
	net := buildHospitalNetwork(t)
	if _, err := net.Query("alice"); !errors.Is(err, ErrNotConstructed) {
		t.Errorf("error = %v, want ErrNotConstructed", err)
	}
	if _, err := net.NewSearcher("s"); !errors.Is(err, ErrNotConstructed) {
		t.Errorf("error = %v, want ErrNotConstructed", err)
	}
	if net.Report() != nil {
		t.Error("Report non-nil before construction")
	}
}

func TestConstructEmptyNetwork(t *testing.T) {
	net, err := NewNetwork([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.ConstructPPI(); !errors.Is(err, ErrNoOwners) {
		t.Errorf("error = %v, want ErrNoOwners", err)
	}
}

func TestConstructAndQueryRecall(t *testing.T) {
	net := buildHospitalNetwork(t)
	report, err := net.ConstructPPI(WithChernoff(0.9), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Owners) != 3 { // alice, bob, carol (sorted)
		t.Fatalf("owners = %d", len(report.Owners))
	}
	if report.Owners[0].Owner != "alice" || report.Owners[0].Epsilon != 0.9 {
		t.Fatalf("alice report = %+v (ε must be max of delegations)", report.Owners[0])
	}
	// Recall: every true provider must appear in the query result.
	got, err := net.Query("alice")
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{0: true, 2: true}
	found := map[int]bool{}
	for _, id := range got {
		found[id] = true
	}
	for id := range want {
		if !found[id] {
			t.Fatalf("provider %d missing from Query result %v", id, got)
		}
	}
	if report.SearchCost < 5 { // at least the 6 true bits minus overlap
		t.Errorf("SearchCost = %d suspiciously low", report.SearchCost)
	}
}

func TestTwoPhaseSearchEndToEnd(t *testing.T) {
	net := buildHospitalNetwork(t)
	if _, err := net.ConstructPPI(WithSeed(8)); err != nil {
		t.Fatal(err)
	}
	net.GrantAll("dr-bob")
	s, err := net.NewSearcher("dr-bob")
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Search("carol")
	if err != nil {
		t.Fatal(err)
	}
	if res.TruePositives != 3 || len(res.Records) != 3 {
		t.Fatalf("result = %+v, want 3 true positives", res)
	}
	if res.Contacted < 3 {
		t.Fatalf("Contacted = %d < 3", res.Contacted)
	}
	// Revoked searcher gets denials, not records.
	if err := net.Revoke(0, "dr-bob"); err != nil {
		t.Fatal(err)
	}
	res, err = s.Search("carol")
	if err != nil {
		t.Fatal(err)
	}
	if res.Denied == 0 {
		t.Fatal("revocation did not produce denials")
	}
	if len(res.Records) != 2 {
		t.Fatalf("records after revocation = %d, want 2", len(res.Records))
	}
}

func TestHighEpsilonBroadcasts(t *testing.T) {
	net := buildHospitalNetwork(t)
	// ε = 1 means full broadcast: every provider appears in the result.
	if err := net.Delegate(4, Record{Owner: "vip", Kind: "visit", Body: "x"}, 1.0); err != nil {
		t.Fatal(err)
	}
	if _, err := net.ConstructPPI(WithSeed(9)); err != nil {
		t.Fatal(err)
	}
	got, err := net.Query("vip")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != net.Providers() {
		t.Fatalf("ε=1 query returned %d of %d providers", len(got), net.Providers())
	}
	rep := net.Report()
	var vip *OwnerReport
	for i := range rep.Owners {
		if rep.Owners[i].Owner == "vip" {
			vip = &rep.Owners[i]
		}
	}
	if vip == nil || !vip.Hidden || vip.Beta != 1 {
		t.Fatalf("vip report = %+v, want hidden β=1", vip)
	}
}

func TestZeroEpsilonPublishesTruth(t *testing.T) {
	net, err := NewNetwork([]string{"a", "b", "c", "d"})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Delegate(1, Record{Owner: "open-owner"}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := net.ConstructPPI(WithSeed(10)); err != nil {
		t.Fatal(err)
	}
	got, err := net.Query("open-owner")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("ε=0 query = %v, want exactly [1]", got)
	}
}

func TestSecureConstruction(t *testing.T) {
	net := buildHospitalNetwork(t)
	report, err := net.ConstructPPI(WithSecure(3), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if report.Secure == nil {
		t.Fatal("secure stats missing")
	}
	if report.Secure.SecSum.Messages == 0 || report.Secure.MPC.Messages == 0 {
		t.Fatal("secure traffic not recorded")
	}
	got, err := net.Query("carol")
	if err != nil {
		t.Fatal(err)
	}
	found := map[int]bool{}
	for _, id := range got {
		found[id] = true
	}
	for _, id := range []int{0, 1, 3} {
		if !found[id] {
			t.Fatalf("secure construction lost recall: %v", got)
		}
	}
}

func TestSecureConstructionWithOT(t *testing.T) {
	// Small network + c=2 keeps the public-key preprocessing fast.
	net, err := NewNetwork([]string{"a", "b", "c", "d"})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Delegate(1, Record{Owner: "alice"}, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := net.Delegate(3, Record{Owner: "alice"}, 0.5); err != nil {
		t.Fatal(err)
	}
	report, err := net.ConstructPPI(WithSecure(2), WithOTPreprocessing(), WithPolicy(PolicyBasic, 0), WithSeed(33))
	if err != nil {
		t.Fatal(err)
	}
	if report.Secure == nil {
		t.Fatal("secure stats missing")
	}
	got, err := net.Query("alice")
	if err != nil {
		t.Fatal(err)
	}
	found := map[int]bool{}
	for _, id := range got {
		found[id] = true
	}
	if !found[1] || !found[3] {
		t.Fatalf("recall lost: %v", got)
	}
}

func TestSecureConstructionOverTCP(t *testing.T) {
	net := buildHospitalNetwork(t)
	if _, err := net.ConstructPPI(WithSecure(3), WithTCP(), WithSeed(12)); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Query("alice"); err != nil {
		t.Fatal(err)
	}
}

func TestReconstructionReplacesIndex(t *testing.T) {
	net := buildHospitalNetwork(t)
	if _, err := net.ConstructPPI(WithSeed(13)); err != nil {
		t.Fatal(err)
	}
	// New delegation becomes visible only after re-construction.
	if err := net.Delegate(4, Record{Owner: "dave"}, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Query("dave"); err == nil {
		t.Fatal("unindexed owner should be unknown")
	}
	if _, err := net.ConstructPPI(WithSeed(14)); err != nil {
		t.Fatal(err)
	}
	got, err := net.Query("dave")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("dave missing after re-construction")
	}
}

func TestWithPolicyOptions(t *testing.T) {
	net := buildHospitalNetwork(t)
	for _, opt := range []Option{
		WithPolicy(PolicyBasic, 0),
		WithPolicy(PolicyIncremented, 0.02),
		WithPolicy(PolicyChernoff, 0.95),
		WithXi(0.7),
		WithBatchSize(2),
		WithPrefixArithmetic(),
	} {
		if _, err := net.ConstructPPI(opt, WithSeed(15)); err != nil {
			t.Fatalf("option failed: %v", err)
		}
	}
}

func TestWithTracerRecordsConstruction(t *testing.T) {
	n := buildHospitalNetwork(t)
	tr := trace.New(2)
	if _, err := n.ConstructPPI(WithSecure(3), WithSeed(7), WithTracer(tr)); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 {
		t.Fatalf("recorded %d traces, want 1", tr.Len())
	}
	if root := tr.Recent()[0].Root(); root.Name != "core.construct" {
		t.Fatalf("root span %q", root.Name)
	}
}
